package mapper

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomCurve(r *rand.Rand, n int) *Curve {
	c := &Curve{}
	for i := 0; i < n; i++ {
		c.Points = append(c.Points, Point{
			Arrival: r.Float64() * 10,
			Cost:    r.Float64() * 100,
		})
	}
	return c
}

func TestPruneMonotone(t *testing.T) {
	// Property (Lemma 3.1): after pruning, arrivals strictly increase and
	// costs strictly decrease — only non-inferior points remain.
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		c := randomCurve(r, 1+r.Intn(60))
		c.prune(0)
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].Arrival <= c.Points[i-1].Arrival {
				t.Fatalf("arrivals not increasing: %v", c.Points)
			}
			if c.Points[i].Cost >= c.Points[i-1].Cost {
				t.Fatalf("costs not decreasing: %v", c.Points)
			}
		}
	}
}

func TestPruneKeepsBestEndpoints(t *testing.T) {
	// The fastest point and the cheapest point must survive pruning (as
	// the first and last points).
	r := rand.New(rand.NewSource(67))
	for trial := 0; trial < 200; trial++ {
		c := randomCurve(r, 2+r.Intn(60))
		minArr, minCostAtMinArr := c.Points[0].Arrival, c.Points[0].Cost
		minCost := c.Points[0].Cost
		for _, p := range c.Points[1:] {
			if p.Arrival < minArr || (p.Arrival == minArr && p.Cost < minCostAtMinArr) {
				minArr, minCostAtMinArr = p.Arrival, p.Cost
			}
			if p.Cost < minCost {
				minCost = p.Cost
			}
		}
		c.prune(0)
		if c.Points[0].Arrival != minArr {
			t.Fatalf("fastest arrival %v lost, have %v", minArr, c.Points[0].Arrival)
		}
		if c.Points[len(c.Points)-1].Cost != minCost {
			t.Fatalf("cheapest cost %v lost, have %v", minCost, c.Points[len(c.Points)-1].Cost)
		}
	}
}

func TestPruneDominance(t *testing.T) {
	// Every dropped point must be dominated by some kept point.
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 100; trial++ {
		c := randomCurve(r, 2+r.Intn(40))
		orig := append([]Point(nil), c.Points...)
		c.prune(0)
		for _, p := range orig {
			dominated := false
			for _, k := range c.Points {
				if k.Arrival <= p.Arrival+1e-15 && k.Cost <= p.Cost+1e-15 {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Fatalf("point (%v,%v) dropped without a dominator", p.Arrival, p.Cost)
			}
		}
	}
}

func TestPruneCap(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	// Build a strictly non-inferior staircase bigger than the cap.
	c := &Curve{}
	n := maxCurvePoints * 3
	for i := 0; i < n; i++ {
		c.Points = append(c.Points, Point{
			Arrival: float64(i),
			Cost:    float64(n - i),
		})
	}
	c.prune(0.0001)
	if len(c.Points) > maxCurvePoints {
		t.Fatalf("cap not enforced: %d points", len(c.Points))
	}
	if c.Points[0].Arrival != 0 {
		t.Error("fastest endpoint lost by cap")
	}
	if c.Points[len(c.Points)-1].Cost != 1 {
		t.Error("cheapest endpoint lost by cap")
	}
	_ = r
}

func TestEpsilonMergeSpacing(t *testing.T) {
	// After ε-pruning, interior arrivals advance by at least ε.
	r := rand.New(rand.NewSource(79))
	const eps = 0.5
	for trial := 0; trial < 100; trial++ {
		c := randomCurve(r, 3+r.Intn(50))
		c.prune(eps)
		for i := 1; i+1 < len(c.Points); i++ {
			if c.Points[i].Arrival-c.Points[i-1].Arrival < eps-1e-12 {
				t.Fatalf("ε spacing violated at %d: %v", i, c.Points)
			}
		}
	}
}

func TestCheapestAtOrBefore(t *testing.T) {
	c := &Curve{Points: []Point{
		{Arrival: 1, Cost: 10},
		{Arrival: 2, Cost: 5},
		{Arrival: 4, Cost: 1},
	}}
	cases := []struct {
		t    float64
		want int
	}{
		{0.5, -1}, {1, 0}, {1.5, 0}, {2, 1}, {3.9, 1}, {4, 2}, {100, 2},
	}
	for _, tc := range cases {
		if got := c.cheapestAtOrBefore(tc.t); got != tc.want {
			t.Errorf("cheapestAtOrBefore(%v) = %d, want %d", tc.t, got, tc.want)
		}
	}
}

func TestCheapestConsistentWithPrune(t *testing.T) {
	// Property: for any t, the chosen point is the min cost among points
	// with arrival ≤ t.
	check := func(raws [16]uint8, tRaw uint8) bool {
		c := &Curve{}
		for i := 0; i < len(raws); i += 2 {
			c.Points = append(c.Points, Point{
				Arrival: float64(raws[i]) / 16,
				Cost:    float64(raws[i+1]),
			})
		}
		c.prune(0)
		tv := float64(tRaw) / 16
		idx := c.cheapestAtOrBefore(tv)
		if idx == -1 {
			for _, p := range c.Points {
				if p.Arrival <= tv {
					return false
				}
			}
			return true
		}
		best := c.Points[idx]
		for _, p := range c.Points {
			if p.Arrival <= tv+1e-12 && p.Cost < best.Cost {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestFastest(t *testing.T) {
	empty := &Curve{}
	if empty.fastest() != -1 {
		t.Error("empty curve fastest != -1")
	}
	c := &Curve{Points: []Point{{Arrival: 1}, {Arrival: 2}}}
	if c.fastest() != 0 {
		t.Error("fastest != 0")
	}
}
