package mapper

import (
	"sort"

	"powermap/internal/genlib"
	"powermap/internal/network"
)

// RecoverDrive performs post-mapping drive-strength power recovery, the
// gate-resizing optimization the paper cites as prior work (Hoppe et al.
// [7]) and an easy companion to power-aware covering: every gate is
// considered, in reverse arrival order, for replacement by a functionally
// identical library cell with smaller input capacitance (typically a lower
// drive strength). A swap is kept only when every primary output still
// meets its required time; passing nil required times freezes the current
// delay as the budget. Returns the number of gates resized.
//
// The netlist's report, loads and arrival times are recomputed after every
// accepted swap, so the final Report reflects the recovered netlist.
func (nl *Netlist) RecoverDrive(lib *genlib.Library, required map[string]float64) int {
	if required == nil {
		required = map[string]float64{}
		for _, o := range nl.sub.Outputs {
			required[o.Name] = nl.arrival[o.Driver]
		}
	}
	classes := equivalenceClasses(lib)
	// Reverse arrival order: downstream gates first, so upstream swaps see
	// the reduced loads.
	order := append([]*Gate(nil), nl.Gates...)
	sort.SliceStable(order, func(i, j int) bool {
		return nl.arrival[order[i].Root] > nl.arrival[order[j].Root]
	})
	swaps := 0
	for _, g := range order {
		variants := classes[cellClassKey(g.Cell)]
		for _, v := range variants {
			if v == g.Cell || totalPinLoad(v) >= totalPinLoad(g.Cell) {
				continue
			}
			old := g.Cell
			g.Cell = v
			nl.recompute()
			if nl.meetsRequired(required) {
				swaps++
				break
			}
			g.Cell = old
			nl.recompute()
		}
	}
	return swaps
}

// meetsRequired reports whether every output with a required time meets it
// (within rounding).
func (nl *Netlist) meetsRequired(required map[string]float64) bool {
	for _, o := range nl.sub.Outputs {
		req, ok := required[o.Name]
		if !ok {
			continue
		}
		if nl.arrival[o.Driver] > req+1e-9 {
			return false
		}
	}
	return true
}

// recompute rebuilds loads, arrivals and the report from the current gate
// list.
func (nl *Netlist) recompute() {
	nl.loads = make(map[*network.Node]float64, len(nl.loads))
	nl.arrival = make(map[*network.Node]float64, len(nl.arrival))
	nl.computeReport()
}

// cellClassKey identifies functional equivalence: same canonical SOP over
// the same pin count. Pin order is part of the cover, so two cells in the
// same class accept identical input bindings.
func cellClassKey(c *genlib.Cell) string {
	return c.Cover().String()
}

// equivalenceClasses groups cells by function, cheapest pin load first.
func equivalenceClasses(lib *genlib.Library) map[string][]*genlib.Cell {
	classes := make(map[string][]*genlib.Cell)
	for _, c := range lib.Cells {
		k := cellClassKey(c)
		classes[k] = append(classes[k], c)
	}
	for _, cells := range classes {
		sort.SliceStable(cells, func(i, j int) bool {
			li, lj := totalPinLoad(cells[i]), totalPinLoad(cells[j])
			if li != lj {
				return li < lj
			}
			return cells[i].Area < cells[j].Area
		})
	}
	return classes
}

func totalPinLoad(c *genlib.Cell) float64 {
	s := 0.0
	for i := range c.Pins {
		s += c.Pins[i].Load
	}
	return s
}
