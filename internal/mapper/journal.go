package mapper

import (
	"powermap/internal/journal"
	"powermap/internal/network"
)

// journalNetlist emits the mapper's provenance events for a finished
// netlist: one map.site event per mapped gate (sorted by root name, like
// nl.Gates), one power.gate attribution row per switched signal, and the
// report rollup. Runs on the coordinator after computeReport, so every
// load and arrival it records is final.
func (s *state) journalNetlist(nl *Netlist) {
	jr := s.opt.Journal
	if !jr.Enabled() {
		return
	}
	for _, g := range nl.Gates {
		sel := s.chosen[g.Root]
		c := s.curves[g.Root]
		ev := journal.MapSite{
			Node:        g.Root.Name,
			Cell:        g.Cell.Name,
			Matches:     c.matches,
			CurvePoints: len(c.Points),
			Required:    sel.required,
			Arrival:     nl.arrival[g.Root],
			Cost:        sel.point.Cost,
			Load:        nl.loads[g.Root],
			Visits:      s.visits[g.Root],
			Fallback:    sel.fallback,
			Why:         whySelected(sel),
		}
		if sel.point.class != "" {
			ev.NPNClass = sel.point.class
			ev.CutLeaves = make([]string, len(g.Inputs))
			for i, in := range g.Inputs {
				ev.CutLeaves[i] = in.Name
			}
		}
		// Candidate arrivals are curve-domain values (default load); the
		// event's own Arrival is the final one under the actual load.
		ev.Candidates = make([]journal.Candidate, len(c.Points))
		for i, p := range c.Points {
			ev.Candidates[i] = journal.Candidate{
				Cell:    p.Cell.Name,
				Arrival: p.Arrival,
				Cost:    p.Cost,
				Chosen:  i == sel.index,
			}
		}
		jr.MapSite(ev)
	}

	// Attribution rows mirror computeReport's power walk — same signals,
	// same order, same accumulation — so the attributed sum below equals
	// Report.PowerUW bit for bit.
	attributed := 0.0
	counted := make(map[*network.Node]bool, len(nl.Gates))
	addRow := func(n *network.Node) {
		if counted[n] {
			return
		}
		counted[n] = true
		p := nl.Env.GatePowerUW(nl.loads[n], n.Activity)
		attributed += p
		ev := journal.GatePower{
			Signal:   n.Name,
			Load:     nl.loads[n],
			Activity: n.Activity,
			PowerUW:  p,
		}
		if g := nl.gateByRoot[n]; g != nil {
			ev.Cell = g.Cell.Name
		}
		jr.GatePower(ev)
	}
	for _, g := range nl.Gates {
		addRow(g.Root)
		for _, in := range g.Inputs {
			addRow(in)
		}
	}
	for _, o := range nl.sub.Outputs {
		addRow(o.Driver)
	}
	jr.Report(journal.Report{
		Gates:        nl.Report.Gates,
		Area:         nl.Report.GateArea,
		DelayNs:      nl.Report.Delay,
		PowerUW:      nl.Report.PowerUW,
		AttributedUW: attributed,
	})
}

func whySelected(sel *selection) string {
	if sel.fallback {
		return "required time infeasible under actual load; fastest point chosen"
	}
	return "min-cost curve point meeting required time"
}
