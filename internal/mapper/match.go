// Package mapper implements the paper's power-efficient technology mapping
// (Section 3): tree covering of a NAND2/INV subject graph with library
// gates, driven by per-node power-delay (or area-delay) curves of
// non-inferior points, with a postorder curve-construction pass and a
// preorder gate-selection pass that recalculates timing as actual loads
// replace the unknown-load default.
package mapper

import (
	"powermap/internal/decomp"
	"powermap/internal/genlib"
	"powermap/internal/network"
)

// Match is one way a library cell can cover the cone rooted at a subject
// node: Inputs[i] is the subject node bound to cell pin i (inputs(n,g) in
// the paper's terminology).
type Match struct {
	Cell   *genlib.Cell
	Inputs []*network.Node
	// Covered counts the subject nodes hidden inside the match (the
	// merged(n,g) set), used for diagnostics and ablations.
	Covered int
	// Class is the NPN class key of the matched function when the match
	// came from the cut backend ("" for structural matches); it flows to
	// the map.site journal event of the selected gate.
	Class string
}

// matchSource enumerates candidate matches per subject node. The
// structural matcher computes them on demand; the cut backend returns
// tables precomputed on the coordinator. Implementations must be safe for
// concurrent matchesAt calls and deterministic: same node, same slice.
type matchSource interface {
	matchesAt(n *network.Node) []Match
}

// patEntry is one compiled pattern with its owning cell, as stored in the
// matcher's root-kind index.
type patEntry struct {
	cell *genlib.Cell
	pat  *genlib.Pattern
}

// matcher enumerates structural matches of library patterns on the subject
// graph.
type matcher struct {
	lib *genlib.Library
	// treeMode forbids matches that hide a multi-fanout node inside a
	// cover (strict DAGON-style tree partitioning).
	treeMode bool
	// Patterns indexed by root kind: a pattern can only match at a node
	// whose gate kind equals its root's, so matchesAt walks one bucket
	// instead of every pattern of every cell. Bucket order preserves the
	// library's (cell, pattern) enumeration order, keeping match order —
	// and therefore stable-sort tie-breaking downstream — unchanged.
	invRooted  []patEntry
	nandRooted []patEntry
}

// newMatcher builds the structural matcher and its root-kind pattern
// index. Compiled patterns are always INV- or NAND-rooted (bare-leaf wire
// patterns are skipped at library load), so two buckets cover the library.
func newMatcher(lib *genlib.Library, treeMode bool) *matcher {
	m := &matcher{lib: lib, treeMode: treeMode}
	for _, cell := range lib.Cells {
		for _, pat := range cell.Patterns {
			switch pat.Kind {
			case genlib.PatInv:
				m.invRooted = append(m.invRooted, patEntry{cell, pat})
			case genlib.PatNand:
				m.nandRooted = append(m.nandRooted, patEntry{cell, pat})
			}
		}
	}
	return m
}

// matchesAt enumerates all matches of all library cells at node n.
// Matches are deduplicated by (cell, input binding).
func (m *matcher) matchesAt(n *network.Node) []Match {
	if n.Kind != network.Internal {
		return nil
	}
	var entries []patEntry
	switch {
	case decomp.IsInv(n):
		entries = m.invRooted
	case decomp.IsNand2(n):
		entries = m.nandRooted
	}
	var out []Match
	seen := map[string]bool{}
	for _, e := range entries {
		bindings := m.matchPattern(e.pat, n, true)
		for _, b := range bindings {
			if !b.complete(e.cell.NumInputs()) {
				continue
			}
			key := e.cell.Name + "|" + b.key()
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, Match{Cell: e.cell, Inputs: b.pins, Covered: e.pat.Size()})
		}
	}
	return out
}

// binding maps cell pins to subject nodes. Patterns may be leaf-DAGs
// (e.g. XOR references each pin twice), so a pin can be bound repeatedly
// and must bind consistently.
type binding struct {
	pins []*network.Node
}

func newBinding(n int) binding { return binding{pins: make([]*network.Node, n)} }

func (b binding) clone() binding {
	return binding{pins: append([]*network.Node(nil), b.pins...)}
}

func (b binding) bind(pin int, node *network.Node) (binding, bool) {
	if b.pins[pin] == node {
		return b, true
	}
	if b.pins[pin] != nil {
		return binding{}, false
	}
	nb := b.clone()
	nb.pins[pin] = node
	return nb, true
}

func (b binding) complete(n int) bool {
	if n > len(b.pins) {
		return false
	}
	for i := 0; i < n; i++ {
		if b.pins[i] == nil {
			return false
		}
	}
	return true
}

func (b binding) key() string {
	s := ""
	for _, p := range b.pins {
		if p == nil {
			s += "_,"
		} else {
			s += p.Name + ","
		}
	}
	return s
}

// matchPattern returns all bindings under which pattern p matches the
// subject cone rooted at n. root marks the top of the match (a match root
// may have any fanout; interior nodes are restricted in tree mode).
func (m *matcher) matchPattern(p *genlib.Pattern, n *network.Node, root bool) []binding {
	// Determine the pin count lazily from the deepest pin index.
	maxPin := maxPinIndex(p)
	init := newBinding(maxPin + 1)
	return m.matchRec(p, n, root, []binding{init})
}

func maxPinIndex(p *genlib.Pattern) int {
	switch p.Kind {
	case genlib.PatLeaf:
		return p.Pin
	case genlib.PatInv:
		return maxPinIndex(p.L)
	default:
		l, r := maxPinIndex(p.L), maxPinIndex(p.R)
		if r > l {
			return r
		}
		return l
	}
}

// matchRec threads a set of partial bindings through the pattern.
func (m *matcher) matchRec(p *genlib.Pattern, n *network.Node, root bool, partial []binding) []binding {
	if len(partial) == 0 {
		return nil
	}
	switch p.Kind {
	case genlib.PatLeaf:
		var out []binding
		for _, b := range partial {
			if nb, ok := b.bind(p.Pin, n); ok {
				out = append(out, nb)
			}
		}
		return out
	case genlib.PatInv:
		if !decomp.IsInv(n) || !m.interiorOK(n, root) {
			return nil
		}
		return m.matchRec(p.L, n.Fanin[0], false, partial)
	default: // PatNand
		if !decomp.IsNand2(n) || !m.interiorOK(n, root) {
			return nil
		}
		a, b := n.Fanin[0], n.Fanin[1]
		var out []binding
		// Both input orders: NAND is commutative.
		left := m.matchRec(p.L, a, false, partial)
		out = append(out, m.matchRec(p.R, b, false, left)...)
		if a != b {
			left = m.matchRec(p.L, b, false, partial)
			out = append(out, m.matchRec(p.R, a, false, left)...)
		}
		return dedupeBindings(out)
	}
}

// interiorOK reports whether node n may participate in a match at the given
// position. Match roots are always allowed; in tree mode interior nodes
// must be fanout-free (single fanout), which confines matches to the
// DAGON-style tree partition.
func (m *matcher) interiorOK(n *network.Node, root bool) bool {
	if root || !m.treeMode {
		return true
	}
	return len(n.Fanout) <= 1
}

func dedupeBindings(bs []binding) []binding {
	if len(bs) < 2 {
		return bs
	}
	seen := map[string]bool{}
	out := bs[:0]
	for _, b := range bs {
		k := b.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, b)
		}
	}
	return out
}
