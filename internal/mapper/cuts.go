package mapper

import (
	"context"
	"fmt"
	"strings"

	"powermap/internal/aig"
	"powermap/internal/decomp"
	"powermap/internal/genlib"
	"powermap/internal/network"
	"powermap/internal/npn"
	"powermap/internal/obs"
)

const (
	// maxCutInputs bounds cut width: truth tables must fit one word.
	maxCutInputs = npn.Max
	// cutLimit is the per-node priority-cut budget. It must stay well
	// above the handful of 2-leaf cuts a node can have, so the
	// direct-fanin cut that guarantees a NAND2/INV match always survives.
	cutLimit = 16
	// maxAutomorphisms bounds the per-class automorphism enumeration.
	// Composing every automorphism with the canonicalizing transforms
	// reaches every input binding of a matched cell; symmetric functions
	// (XORs) have huge groups, so the tail is cut — losing only alternate
	// bindings, never the match itself (see the structural fallback).
	maxAutomorphisms = 64
)

// cellSig records that a library cell belongs to an NPN class: tc maps the
// cell's truth table to the class representative.
type cellSig struct {
	cell *genlib.Cell
	tc   npn.Transform
}

// classInfo is the NPN match cache entry for one canonical class.
type classInfo struct {
	sigs []cellSig       // library cells in this class (genlib mode)
	auts []npn.Transform // automorphism group of the representative
}

// cutMatcher is the cut-based Boolean matching backend. All tables are
// precomputed sequentially on the coordinator (inside the mapper.cuts
// span), so matchesAt is a lock-free map read and the mapped netlist is
// identical for every worker count.
type cutMatcher struct {
	matches map[*network.Node][]Match
	deps    map[*network.Node][]*network.Node
}

func (c *cutMatcher) matchesAt(n *network.Node) []Match { return c.matches[n] }

// depsOf lists the nodes whose curves matches at n read — the scheduling
// dependencies of the curve phase. Unlike structural matches, cut matches
// may bind leaves outside the network fanin cone (through strash sharing),
// so levels must be derived from these sets rather than n.Fanin.
func (c *cutMatcher) depsOf(n *network.Node) []*network.Node { return c.deps[n] }

// classKey formats the NPN match-cache key: input count and canonical
// representative, e.g. "3:0x96".
func classKey(n int, rep uint64) string { return fmt.Sprintf("%d:%#x", n, rep) }

// lutName derives the deterministic synthetic-cell name for a LUT match.
func lutName(n int, tt uint64) string { return fmt.Sprintf("lut%d_%x", n, tt) }

// newCutMatcher builds the AIG, enumerates priority cuts, and precomputes
// every node's Boolean matches. In genlib mode cut functions match library
// cells through NPN class signatures; with opt.LUT > 0 every cut maps to a
// synthetic LUT cell keyed by its (phase-adjusted, support-reduced) truth
// table. Matches never need an output inversion — a match is only emitted
// when every cell pin can be wired to an existing, topologically earlier
// network signal of the exact phase the transform demands — so
// Netlist.Verify's per-gate BDD identity holds by construction.
func newCutMatcher(ctx context.Context, sub *network.Network, opt Options) (*cutMatcher, error) {
	lib := opt.Library
	subject, err := aig.FromNetwork(sub)
	if err != nil {
		return nil, fmt.Errorf("mapper: %w", err)
	}
	k := opt.LUT
	if k == 0 {
		if k = lib.MaxInputs(); k > maxCutInputs {
			k = maxCutInputs
		}
	}
	cuts := subject.G.EnumerateCuts(k, cutLimit)

	// NPN signatures of the library cells, grouped by canonical class.
	// Cells with vacuous pins (function independent of some pin) are
	// skipped: their support does not cover their pin list, so no cut
	// function can bind every pin meaningfully.
	sigsByKey := make(map[string][]cellSig)
	if opt.LUT == 0 {
		for _, cell := range lib.Cells {
			ni := cell.NumInputs()
			if ni == 0 || ni > maxCutInputs {
				continue
			}
			tt, ok := cell.TruthTable()
			if !ok {
				continue
			}
			if len(npn.Support(tt, ni)) != ni {
				continue
			}
			rep, tc := npn.Canonical(tt, ni)
			key := classKey(ni, rep)
			sigsByKey[key] = append(sigsByKey[key], cellSig{cell: cell, tc: tc})
		}
	}

	type canonResult struct {
		rep uint64
		tf  npn.Transform
	}
	type rawKey struct {
		n  uint8
		tt uint64
	}
	canonCache := make(map[rawKey]canonResult)
	canonical := func(tt uint64, n int) (uint64, npn.Transform) {
		ck := rawKey{uint8(n), tt}
		if r, ok := canonCache[ck]; ok {
			return r.rep, r.tf
		}
		rep, tf := npn.Canonical(tt, n)
		canonCache[ck] = canonResult{rep, tf}
		return rep, tf
	}
	classes := make(map[string]*classInfo)
	lutCells := make(map[rawKey]*genlib.Cell)
	var protoPin genlib.Pin
	if nand := lib.Nand2(); nand != nil {
		protoPin = nand.Pins[0]
	}
	hits := opt.Obs.Counter("mapper.npn_cache_hits")
	misses := opt.Obs.Counter("mapper.npn_cache_misses")
	classGauge := opt.Obs.Gauge("mapper.npn_classes")
	cutsCtr := opt.Obs.Counter("mapper.cuts_enumerated")
	obsAIG(opt.Obs, subject.G)

	// classAt resolves the match-cache entry for a canonical class,
	// counting hits and misses.
	classAt := func(key string, rep uint64, m int) *classInfo {
		if info, ok := classes[key]; ok {
			hits.Inc()
			return info
		}
		misses.Inc()
		info := &classInfo{sigs: sigsByKey[key]}
		if len(info.sigs) > 0 {
			info.auts = npn.Automorphisms(rep, m, maxAutomorphisms)
		}
		classes[key] = info
		return info
	}

	// localMatch covers a node whose global function strash-folded to a
	// constant with its literal local gate: the library inverter/NAND in
	// genlib mode, or the equivalent synthetic LUT in LUT mode.
	localMatch := func(n *network.Node) (Match, error) {
		if opt.LUT == 0 {
			if fb, ok := structuralFallback(n, lib); ok {
				return fb, nil
			}
			return Match{}, fmt.Errorf("mapper: node %s computes a constant and is not a decomposed gate", n.Name)
		}
		var (
			m  int
			tt uint64
		)
		switch {
		case decomp.IsInv(n):
			m, tt = 1, 0x1 // ¬x
		case decomp.IsNand2(n):
			m, tt = 2, 0x7 // ¬(ab)
		default:
			return Match{}, fmt.Errorf("mapper: node %s computes a constant and is not a decomposed gate", n.Name)
		}
		ck := rawKey{uint8(m), tt}
		cell := lutCells[ck]
		if cell == nil {
			var err error
			cell, err = genlib.NewLUTCell(lutName(m, tt), m, tt, float64(int(1)<<uint(m))/2, protoPin)
			if err != nil {
				return Match{}, err
			}
			lutCells[ck] = cell
		}
		inputs := make([]*network.Node, len(n.Fanin))
		copy(inputs, n.Fanin)
		return Match{Cell: cell, Inputs: inputs, Covered: 1}, nil
	}

	cm := &cutMatcher{
		matches: make(map[*network.Node][]Match),
		deps:    make(map[*network.Node][]*network.Node),
	}
	for _, n := range sub.TopoOrder() {
		if n.IsSource() {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("mapper: %w", err)
		}
		ln := subject.Lits[n]
		v := ln.Node()
		if v == 0 {
			// Structural hashing folded this node's global function to a
			// constant, so it has no AIG cone to cut. The network still
			// demands a gate here (downstream fanin is wired by name), so
			// cover the node with its own local function over its direct
			// fanins — exactly what the structural backend would emit.
			m, err := localMatch(n)
			if err != nil {
				return nil, err
			}
			cm.matches[n] = []Match{m}
			cm.deps[n] = depsOfMatches(cm.matches[n])
			continue
		}
		nodeTopo := subject.Topo[n]
		seen := make(map[string]bool)
		var out []Match
		add := func(m Match) {
			var b strings.Builder
			b.WriteString(m.Cell.Name)
			for _, in := range m.Inputs {
				b.WriteByte('|')
				b.WriteString(in.Name)
			}
			if key := b.String(); !seen[key] {
				seen[key] = true
				out = append(out, m)
			}
		}

		matchCut := func(leaves []uint32) error {
			tt, err := subject.G.CutTT(v, leaves)
			if err != nil {
				return err
			}
			nl := len(leaves)
			if ln.Neg() {
				tt = ^tt & npn.Mask(nl)
			}
			cone := -1
			if opt.LUT > 0 {
				// LUT mode: pick, per leaf, whichever phase has a network
				// signal (every AND node's negative phase does — the NAND2
				// that created it), fold the chosen phases into the truth
				// table, reduce, and key a synthetic cell by the raw table.
				inputs := make([]*network.Node, nl)
				flip := 0
				for i, leaf := range leaves {
					r := subject.Reps[aig.MakeLit(leaf, false)]
					if r == nil || subject.Topo[r] >= nodeTopo {
						r = subject.Reps[aig.MakeLit(leaf, true)]
						if r == nil || subject.Topo[r] >= nodeTopo {
							return nil // uncovered phase; try other cuts
						}
						flip |= 1 << uint(i)
					}
					inputs[i] = r
				}
				if flip != 0 {
					var adj uint64
					for x := 0; x < 1<<uint(nl); x++ {
						if tt>>uint(x^flip)&1 == 1 {
							adj |= 1 << uint(x)
						}
					}
					tt = adj
				}
				rtt, sup := npn.Reduce(tt, nl)
				m := len(sup)
				if m == 0 {
					return nil
				}
				rep, _ := canonical(rtt, m)
				key := classKey(m, rep)
				classAt(key, rep, m)
				ck := rawKey{uint8(m), rtt}
				cell := lutCells[ck]
				if cell == nil {
					cell, err = genlib.NewLUTCell(lutName(m, rtt), m, rtt, float64(int(1)<<uint(m))/2, protoPin)
					if err != nil {
						return err
					}
					lutCells[ck] = cell
				}
				pins := make([]*network.Node, m)
				for i, s := range sup {
					pins[i] = inputs[s]
				}
				add(Match{Cell: cell, Inputs: pins, Covered: subject.G.ConeSize(v, leaves), Class: key})
				return nil
			}
			rtt, sup := npn.Reduce(tt, nl)
			m := len(sup)
			if m == 0 {
				return nil
			}
			rep, tf := canonical(rtt, m)
			key := classKey(m, rep)
			info := classAt(key, rep, m)
			if len(info.sigs) == 0 {
				return nil
			}
			invTf := tf.Invert()
			for _, sig := range info.sigs {
				for _, aut := range info.auts {
					// u maps the cell function onto the cut function:
					// u.Apply(cellTT) == rtt. Every valid u is reached as
					// invTf ∘ aut ∘ tc over the representative's
					// automorphisms.
					u := npn.Compose(invTf, npn.Compose(aut, sig.tc))
					if u.NegOut {
						// The netlist demands exact per-gate BDD identity;
						// an output inversion cannot be absorbed.
						continue
					}
					inputs := make([]*network.Node, m)
					ok := true
					for j := 0; j < m; j++ {
						leaf := leaves[sup[u.Perm[j]]]
						neg := u.Flips>>uint(j)&1 == 1
						r := subject.Reps[aig.MakeLit(leaf, neg)]
						if r == nil || subject.Topo[r] >= nodeTopo {
							ok = false
							break
						}
						inputs[j] = r
					}
					if !ok {
						continue
					}
					if cone < 0 {
						cone = subject.G.ConeSize(v, leaves)
					}
					add(Match{Cell: sig.cell, Inputs: inputs, Covered: cone, Class: key})
				}
			}
			return nil
		}

		for _, cut := range cuts[v] {
			if err := matchCut(cut.Leaves); err != nil {
				return nil, err
			}
		}
		cutsCtr.Add(int64(len(cuts[v])))
		if len(out) == 0 && opt.LUT == 0 {
			// Guaranteed fallback: the subject node's own gate. Reachable
			// only when cut pruning or the automorphism cap starved a
			// pathological node; the library always has nand2 and inv.
			if fb, ok := structuralFallback(n, lib); ok {
				out = append(out, fb)
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("mapper: no NPN match at node %s", n.Name)
		}
		cm.matches[n] = out
		cm.deps[n] = depsOfMatches(out)
	}
	classGauge.Set(float64(len(classes)))
	return cm, nil
}

// obsAIG exports the subject-graph counters.
func obsAIG(sc *obs.Scope, g *aig.Graph) {
	sc.Gauge("aig.nodes").Set(float64(g.Len()))
	sc.Gauge("aig.and_nodes").Set(float64(g.NumAnds()))
	sc.Gauge("aig.strash_dedup").Set(float64(g.Dedup()))
}

// structuralFallback covers a subject node with its literal gate.
func structuralFallback(n *network.Node, lib *genlib.Library) (Match, bool) {
	switch {
	case decomp.IsInv(n):
		return Match{Cell: lib.Inverter(), Inputs: []*network.Node{n.Fanin[0]}, Covered: 1}, true
	case decomp.IsNand2(n):
		return Match{Cell: lib.Nand2(), Inputs: []*network.Node{n.Fanin[0], n.Fanin[1]}, Covered: 1}, true
	}
	return Match{}, false
}

// depsOfMatches unions the input nodes across a node's matches, preserving
// first-appearance order.
func depsOfMatches(ms []Match) []*network.Node {
	seen := make(map[*network.Node]bool)
	var out []*network.Node
	for _, m := range ms {
		for _, in := range m.Inputs {
			if !seen[in] {
				seen[in] = true
				out = append(out, in)
			}
		}
	}
	return out
}
