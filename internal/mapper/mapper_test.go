package mapper

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"powermap/internal/blif"
	"powermap/internal/decomp"
	"powermap/internal/genlib"
	"powermap/internal/huffman"
	"powermap/internal/network"
	"powermap/internal/prob"
	"powermap/internal/sop"
)

// subject builds a NAND2/INV subject network from BLIF text via decomp.
func subject(t *testing.T, text string) (*network.Network, *prob.Model) {
	t.Helper()
	nw, err := blif.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	res, err := decomp.Decompose(context.Background(), nw, decomp.Options{
		Strategy: decomp.MinPower,
		Style:    huffman.Static,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Network, res.Model
}

const smallBlif = `
.model small
.inputs a b c d
.outputs y z
.names a b t1
11 1
.names t1 c t2
1- 1
-1 1
.names t2 d y
11 1
.names a c z
0- 1
-0 1
.end
`

func mapSmall(t *testing.T, opt Options) *Netlist {
	t.Helper()
	sub, model := subject(t, smallBlif)
	if opt.Library == nil {
		opt.Library = genlib.Lib2()
	}
	nl, err := Map(context.Background(), sub, model, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Verify(model); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	return nl
}

func TestMapAreaDelay(t *testing.T) {
	nl := mapSmall(t, Options{Objective: AreaDelay})
	if len(nl.Gates) == 0 {
		t.Fatal("no gates mapped")
	}
	if nl.Report.GateArea <= 0 || nl.Report.Delay <= 0 || nl.Report.PowerUW <= 0 {
		t.Errorf("degenerate report: %+v", nl.Report)
	}
}

func TestMapPowerDelay(t *testing.T) {
	nl := mapSmall(t, Options{Objective: PowerDelay})
	if len(nl.Gates) == 0 {
		t.Fatal("no gates mapped")
	}
}

func TestPdMapNotWorsePowerThanAdMapWhenRelaxed(t *testing.T) {
	// With slack available, pd-map must spend it on power, ad-map on area.
	ad := mapSmall(t, Options{Objective: AreaDelay, Relax: Float64(0.5)})
	pd := mapSmall(t, Options{Objective: PowerDelay, Relax: Float64(0.5)})
	if pd.Report.PowerUW > ad.Report.PowerUW*1.05+1e-9 {
		t.Errorf("pd-map power %.3f clearly worse than ad-map %.3f",
			pd.Report.PowerUW, ad.Report.PowerUW)
	}
	if ad.Report.GateArea > pd.Report.GateArea*1.5 {
		t.Errorf("ad-map area %.1f much worse than pd-map %.1f",
			ad.Report.GateArea, pd.Report.GateArea)
	}
}

func TestRequiredTimesTradeCost(t *testing.T) {
	// Tight timing must never be cheaper AND faster to satisfy than loose
	// timing; loose timing should not be slower than... it can be slower
	// but not more power-hungry.
	tight := mapSmall(t, Options{Objective: PowerDelay, Relax: Float64(0)})
	loose := mapSmall(t, Options{Objective: PowerDelay, Relax: Float64(1.0)})
	if loose.Report.PowerUW > tight.Report.PowerUW+1e-9 {
		t.Errorf("loose timing power %.3f exceeds tight timing power %.3f",
			loose.Report.PowerUW, tight.Report.PowerUW)
	}
	// Delay ordering is not strictly guaranteed — the unknown-load problem
	// means big fast cells load their drivers more (Section 3.2.3) — but
	// the tight mapping must stay in the same delay regime.
	if tight.Report.Delay > loose.Report.Delay*1.6+1e-9 {
		t.Errorf("tight mapping (%.3f ns) much slower than loose mapping (%.3f ns)",
			tight.Report.Delay, loose.Report.Delay)
	}
}

func TestTreeModeWorks(t *testing.T) {
	nl := mapSmall(t, Options{Objective: PowerDelay, TreeMode: true})
	if len(nl.Gates) == 0 {
		t.Fatal("tree mode mapped nothing")
	}
}

func TestEpsilonPruningStillValid(t *testing.T) {
	exact := mapSmall(t, Options{Objective: PowerDelay})
	pruned := mapSmall(t, Options{Objective: PowerDelay, Epsilon: 0.5})
	// ε-pruning may cost a little quality but must stay in the ballpark.
	if pruned.Report.PowerUW > exact.Report.PowerUW*1.5 {
		t.Errorf("epsilon pruning degraded power %.3f -> %.3f too much",
			exact.Report.PowerUW, pruned.Report.PowerUW)
	}
}

func TestExplicitRequiredTimes(t *testing.T) {
	sub, model := subject(t, smallBlif)
	lib := genlib.Lib2()
	// First find the fastest achievable delay.
	fast, err := Map(context.Background(), sub, model, Options{Objective: PowerDelay, Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	req := map[string]float64{}
	for _, o := range sub.Outputs {
		req[o.Name] = fast.Report.Delay * 2
	}
	slow, err := Map(context.Background(), sub, model, Options{Objective: PowerDelay, Library: lib, PORequired: req})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Report.Delay > fast.Report.Delay*2+1e-9 {
		t.Errorf("required times violated: %.3f > %.3f", slow.Report.Delay, fast.Report.Delay*2)
	}
	if slow.Report.PowerUW > fast.Report.PowerUW+1e-9 {
		t.Errorf("relaxed mapping uses more power: %.3f > %.3f",
			slow.Report.PowerUW, fast.Report.PowerUW)
	}
}

func TestMatcherFindsComplexGates(t *testing.T) {
	// AOI21: y = !(a*b + c). Build its subject graph directly.
	nw := network.New("aoi")
	a, b, c := nw.AddPI("a"), nw.AddPI("b"), nw.AddPI("c")
	nd := nw.AddNode("nd", []*network.Node{a, b}, decomp.Nand2Cover()) // !(ab)
	ic := nw.AddNode("ic", []*network.Node{c}, decomp.InvCover())      // !c
	y := nw.AddNode("y", []*network.Node{nd, ic}, decomp.Nand2Cover()) // !( !(ab) * !c ) = ab + c
	inv := nw.AddNode("yb", []*network.Node{y}, decomp.InvCover())     // !(ab + c) = AOI21
	nw.MarkOutput("o", inv)
	model, err := prob.Compute(nw, nil, huffman.Static)
	if err != nil {
		t.Fatal(err)
	}
	lib := genlib.Lib2()
	m := newMatcher(lib, false)
	found := false
	for _, match := range m.matchesAt(inv) {
		if match.Cell.Name == "aoi21" {
			found = true
			// Pin binding: pins a,b bind {a,b}, pin c binds c.
			pc := match.Inputs[match.Cell.PinIndex("c")]
			if pc != c {
				t.Errorf("aoi21 pin c bound to %s", pc.Name)
			}
		}
	}
	if !found {
		t.Error("aoi21 not matched on its own subject graph")
	}
	// Full mapping should verify.
	nl, err := Map(context.Background(), nw, model, Options{Objective: AreaDelay, Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Verify(model); err != nil {
		t.Fatal(err)
	}
}

func TestXorLeafDagMatch(t *testing.T) {
	// Build the canonical NAND-tree for XOR with shared leaves:
	// x = !(a·b); y = !(a·x); z = !(b·x); out = !(y·z) = a XOR b.
	nw := network.New("xor")
	a, b := nw.AddPI("a"), nw.AddPI("b")
	x := nw.AddNode("x", []*network.Node{a, b}, decomp.Nand2Cover())
	y := nw.AddNode("y", []*network.Node{a, x}, decomp.Nand2Cover())
	z := nw.AddNode("z", []*network.Node{b, x}, decomp.Nand2Cover())
	out := nw.AddNode("out", []*network.Node{y, z}, decomp.Nand2Cover())
	nw.MarkOutput("o", out)
	if _, err := prob.Compute(nw, nil, huffman.Static); err != nil {
		t.Fatal(err)
	}
	lib := genlib.Lib2()
	m := newMatcher(lib, false)
	found := false
	for _, match := range m.matchesAt(out) {
		if match.Cell.Name == "xor2" {
			found = true
		}
	}
	if !found {
		t.Skip("xor2 pattern is not a leaf-DAG shape reachable by tree matching on this structure")
	}
}

func TestNoMatchWithoutLibraryGates(t *testing.T) {
	sub, model := subject(t, smallBlif)
	if _, err := Map(context.Background(), sub, model, Options{}); err == nil {
		t.Error("nil library accepted")
	}
}

func TestLoadsAndArrivalConsistency(t *testing.T) {
	nl := mapSmall(t, Options{Objective: PowerDelay})
	// Every gate input must carry a positive load (at least the pin cap),
	// and arrivals must be monotone along gate edges.
	for _, g := range nl.Gates {
		for pin, in := range g.Inputs {
			if nl.Load(in) <= 0 {
				t.Errorf("input %s has non-positive load", in.Name)
			}
			edge := g.Cell.Pins[pin].Block + g.Cell.Pins[pin].Drive*nl.Load(g.Root)
			if nl.Arrival(g.Root)+1e-9 < nl.Arrival(in)+edge {
				t.Errorf("arrival at %s (%.3f) earlier than input %s (%.3f) + edge %.3f",
					g.Root.Name, nl.Arrival(g.Root), in.Name, nl.Arrival(in), edge)
			}
		}
	}
}

func TestRandomNetworksMapAndVerify(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	lib := genlib.Lib2()
	for trial := 0; trial < 10; trial++ {
		nw := randomNetwork(r, 4, 6)
		res, err := decomp.Decompose(context.Background(), nw, decomp.Options{Strategy: decomp.MinPower, Style: huffman.Static})
		if err != nil {
			t.Fatal(err)
		}
		for _, obj := range []Objective{AreaDelay, PowerDelay} {
			nl, err := Map(context.Background(), res.Network, res.Model, Options{Objective: obj, Library: lib, Relax: Float64(0.3)})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, obj, err)
			}
			if err := nl.Verify(res.Model); err != nil {
				t.Fatalf("trial %d %v: %v", trial, obj, err)
			}
		}
	}
}

func TestPowerMethod2(t *testing.T) {
	// Method 2 must produce a valid, verified mapping; Method 1 is more
	// accurate (Section 3.1), so its final power should not be clearly
	// worse than Method 2's.
	m1 := mapSmall(t, Options{Objective: PowerDelay, Relax: Float64(0.4)})
	m2 := mapSmall(t, Options{Objective: PowerDelay, Relax: Float64(0.4), PowerMethod2: true})
	if len(m2.Gates) == 0 {
		t.Fatal("method 2 mapped nothing")
	}
	if m1.Report.PowerUW > m2.Report.PowerUW*1.25 {
		t.Errorf("Method 1 power %.2f clearly worse than Method 2 %.2f",
			m1.Report.PowerUW, m2.Report.PowerUW)
	}
}

func TestCellCounts(t *testing.T) {
	nl := mapSmall(t, Options{Objective: AreaDelay})
	total := 0
	for _, cc := range nl.CellCounts() {
		total += cc.Count
	}
	if total != len(nl.Gates) {
		t.Errorf("cell counts sum %d != gate count %d", total, len(nl.Gates))
	}
}

func TestWorstSlack(t *testing.T) {
	nl := mapSmall(t, Options{Objective: PowerDelay})
	// With required = report delay, worst slack must be ~0 or positive.
	if ws := nl.WorstSlack(nil); ws < -1e-9 {
		t.Errorf("worst slack %v negative against own delay", ws)
	}
	if ws := nl.WorstSlack(map[string]float64{"y": 0, "z": 0}); ws > 0 {
		t.Errorf("zero required times should give negative slack, got %v", ws)
	}
}

// randomNetwork builds a random multi-level network (no constants).
func randomNetwork(r *rand.Rand, npi, nnodes int) *network.Network {
	nw := network.New("rand")
	var pool []*network.Node
	for i := 0; i < npi; i++ {
		pool = append(pool, nw.AddPI(nw.FreshName("pi")))
	}
	for i := 0; i < nnodes; i++ {
		k := 1 + r.Intn(3)
		var fanins []*network.Node
		seen := map[*network.Node]bool{}
		for len(fanins) < k {
			f := pool[r.Intn(len(pool))]
			if !seen[f] {
				seen[f] = true
				fanins = append(fanins, f)
			}
		}
		f := sop.NewCover(k)
		for cbi := 0; cbi < 1+r.Intn(2); cbi++ {
			cube := sop.NewCube(k)
			for v := range cube {
				cube[v] = sop.Lit(r.Intn(3))
			}
			if cube.NumLiterals() == 0 {
				cube[0] = sop.Pos
			}
			f.AddCube(cube)
		}
		f.Minimize()
		if f.IsZero() || f.IsOne() {
			f = sop.FromLiteral(k, 0, true)
		}
		pool = append(pool, nw.AddNode(nw.FreshName("n"), fanins, f))
	}
	nw.MarkOutput("o1", pool[len(pool)-1])
	nw.MarkOutput("o2", pool[len(pool)-2])
	return nw
}

func TestFanoutDivision(t *testing.T) {
	sub, model := subject(t, smallBlif)
	lib := genlib.Lib2()
	s := &state{
		opt:   Options{Objective: PowerDelay, Library: lib},
		lib:   lib,
		model: model,
		sub:   sub,
	}
	for _, n := range sub.TopoOrder() {
		div := s.fanoutDiv(n)
		if n.Kind != network.Internal && div != 1 {
			t.Errorf("source %s divided by %v", n.Name, div)
		}
		if n.Kind == network.Internal && len(n.Fanout) > 1 && math.Abs(div-float64(len(n.Fanout))) > 1e-12 {
			t.Errorf("node %s fanout %d divided by %v", n.Name, len(n.Fanout), div)
		}
	}
}
