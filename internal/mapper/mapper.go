package mapper

import (
	"context"
	"fmt"
	"math"
	"sort"

	"powermap/internal/exec"
	"powermap/internal/genlib"
	"powermap/internal/journal"
	"powermap/internal/network"
	"powermap/internal/obs"
	"powermap/internal/power"
	"powermap/internal/prob"
)

// Objective selects the curve cost: the paper's ad-map (area under delay
// constraints, the Chaudhary–Pedram baseline of Methods I–III) or pd-map
// (average power under delay constraints, Methods IV–VI).
type Objective int

const (
	// AreaDelay minimizes total cell area subject to required times.
	AreaDelay Objective = iota
	// PowerDelay minimizes average power subject to required times,
	// accounted with Method 1 of Section 3.1.
	PowerDelay
)

func (o Objective) String() string {
	if o == AreaDelay {
		return "ad-map"
	}
	return "pd-map"
}

// Backend selects how candidate matches are enumerated. Both backends feed
// the same power-delay curve machinery, so Lemma 3.1 invariants, CurveAudit
// and the selection passes are backend-independent.
type Backend int

const (
	// BackendStructural is the paper's pattern matcher on the NAND2/INV
	// subject network (tree or DAG cover, per Options.TreeMode).
	BackendStructural Backend = iota
	// BackendCuts matches Boolean functions: it structurally hashes the
	// subject network into an AIG, enumerates k-feasible cuts per node,
	// and matches each cut's NPN-canonicalized truth table against
	// precomputed library cell signatures (or generic LUT cells).
	BackendCuts
)

func (b Backend) String() string {
	if b == BackendCuts {
		return "cuts"
	}
	return "structural"
}

// Options configures Map.
type Options struct {
	Objective Objective
	Library   *genlib.Library
	// Backend selects the match enumerator: the structural pattern matcher
	// (default) or the cut-based NPN Boolean matcher over a structurally
	// hashed AIG.
	Backend Backend
	// LUT, with BackendCuts, replaces library matching by a generic-LUT
	// workload: every k-feasible cut maps to a synthetic k-input LUT cell
	// (2 <= k <= 6). Zero disables LUT mode.
	LUT int
	// TreeMode restricts matches to the DAGON-style tree partition; the
	// default (false) is the paper's fanout-division DAG heuristic
	// (Section 3.3). It applies to the structural backend only: cut
	// matches see through the strash-shared AIG, where the tree partition
	// of the subject network has no meaning.
	TreeMode bool
	// Epsilon is the curve ε-pruning width in ns (Section 3.1). Zero means
	// the default 0.05 ns; a negative value disables ε-pruning and keeps
	// every non-inferior point (exponentially expensive on large DAGs).
	Epsilon float64
	// Env is the electrical operating point; the zero value means
	// power.Default().
	Env power.Environment
	// OutputLoad is the capacitance (in load units) attached to each
	// primary output; 0 means twice the library default load.
	OutputLoad float64
	// PIArrival gives arrival times at primary inputs (default 0).
	PIArrival map[string]float64
	// PORequired gives required times at primary outputs. Outputs not
	// listed get their minimum achievable arrival multiplied by (1+Relax).
	PORequired map[string]float64
	// Relax loosens defaulted required times as a slack fraction of the
	// fastest mapping. Nil selects DefaultRelax; Float64(0) demands the
	// fastest mapping.
	Relax *float64
	// AreaTiebreak adds a small area-proportional term (µW per area unit)
	// to the power cost so pd-map does not spend unbounded area on
	// negligible power gains; it controls where the flow sits on the
	// power/area trade-off curve. Zero means the default 0.05 (which
	// lands near the paper's −22% power / +12% area operating point);
	// negative disables the regularization entirely.
	AreaTiebreak float64
	// PowerMethod2 switches the dynamic-power accounting of Section 3.1
	// from Method 1 (each input's output charge is priced at its mapped
	// parent with the exact pin capacitance — the paper's choice) to
	// Method 2 (each node prices its own output charge with the default
	// load, suffering the unknown-load problem). Provided for the
	// Method 1 vs Method 2 ablation.
	PowerMethod2 bool
	// CurveAudit, when non-nil, is invoked with every internal node's
	// pruned power-delay curve as it is installed. Calls happen on the
	// coordinator goroutine (never inside worker tasks), so the hook needs
	// no synchronization of its own; it must not retain or mutate the
	// curve. Used by the verification layer to check curve invariants
	// (strictly sorted arrivals, no dominated points) in-flight.
	CurveAudit func(*network.Node, *Curve)
	// Obs receives phase spans and mapping metrics (curve points
	// generated/pruned, selection passes, node visits). Nil disables
	// instrumentation.
	Obs *obs.Scope
	// Journal receives one map.site provenance event per mapped gate
	// (matches considered, curve candidates, chosen point and why), the
	// per-gate power attribution rows, and the report rollup. Nil
	// disables journaling.
	Journal *journal.Journal
	// Workers bounds the pool used by the curve-construction phase. <= 0
	// means one worker per CPU; 1 covers nodes sequentially. Curves — and
	// therefore the mapped netlist — are identical for every worker count.
	Workers int
}

// DefaultRelax is the slack fraction applied to defaulted required times
// when Options.Relax is nil: 15% over the fastest mapping, spendable on
// area/power recovery.
const DefaultRelax = 0.15

// Float64 returns a pointer to v, for optional fields like Options.Relax.
func Float64(v float64) *float64 { return &v }

type selection struct {
	point    Point
	required float64
	index    int  // index of point on the node's curve
	fallback bool // required time infeasible; fastest point taken instead
}

// stateObs caches the mapper's metric handles so hot loops never touch
// the registry map. With observability disabled every handle is nil and
// each call collapses to a nil check.
type stateObs struct {
	pointsGenerated *obs.Counter
	pointsKept      *obs.Counter
	pointsPruned    *obs.Counter
	curveSize       *obs.Histogram
	matchesPerNode  *obs.Histogram
	nodesCovered    *obs.Counter
	selectPasses    *obs.Counter
	nodeVisits      *obs.Counter
	loadRecalcs     *obs.Counter
	sitesSelected   *obs.Counter
}

func newStateObs(sc *obs.Scope) stateObs {
	return stateObs{
		pointsGenerated: sc.Counter("mapper.curve_points_generated"),
		pointsKept:      sc.Counter("mapper.curve_points_kept"),
		pointsPruned:    sc.Counter("mapper.curve_points_pruned"),
		curveSize:       sc.Histogram("mapper.curve_points_per_node"),
		matchesPerNode:  sc.Histogram("mapper.matches_per_node"),
		nodesCovered:    sc.Counter("mapper.nodes_covered"),
		selectPasses:    sc.Counter("mapper.select_passes"),
		nodeVisits:      sc.Counter("mapper.node_visits"),
		loadRecalcs:     sc.Counter("mapper.load_recalcs"),
		sitesSelected:   sc.Counter("mapper.sites_selected"),
	}
}

type state struct {
	opt     Options
	lib     *genlib.Library
	env     power.Environment
	matcher matchSource
	sub     *network.Network
	model   *prob.Model
	curves  map[*network.Node]*Curve
	chosen  map[*network.Node]*selection
	loads   map[*network.Node]float64
	visits  map[*network.Node]int
	poLoad  float64
	cdef    float64
	relax   float64
	workers int
	obs     stateObs
}

// Map covers the NAND2/INV subject network with library gates. The model
// must have been computed on (or cover) the subject network; it supplies
// the mapping-independent switching activities E_n of Section 3.1. The
// ctx cancels the run between nodes; the Workers option fans the curve
// construction out across a pool with curves identical to a sequential
// run.
func Map(ctx context.Context, sub *network.Network, model *prob.Model, opt Options) (*Netlist, error) {
	if opt.Library == nil {
		return nil, fmt.Errorf("mapper: no library given")
	}
	env := opt.Env
	if env.Vdd == 0 {
		env = power.Default()
	}
	if opt.Epsilon == 0 {
		opt.Epsilon = 0.05
	} else if opt.Epsilon < 0 {
		opt.Epsilon = 0
	}
	if opt.AreaTiebreak == 0 {
		opt.AreaTiebreak = 0.05
	} else if opt.AreaTiebreak < 0 {
		opt.AreaTiebreak = 0
	}
	if opt.LUT != 0 {
		if opt.Backend != BackendCuts {
			return nil, fmt.Errorf("mapper: LUT mode requires the cuts backend")
		}
		if opt.LUT < 2 || opt.LUT > maxCutInputs {
			return nil, fmt.Errorf("mapper: LUT arity %d out of range 2..%d", opt.LUT, maxCutInputs)
		}
	}
	s := &state{
		opt:     opt,
		lib:     opt.Library,
		env:     env,
		matcher: newMatcher(opt.Library, opt.TreeMode),
		sub:     sub,
		model:   model,
		curves:  make(map[*network.Node]*Curve),
		chosen:  make(map[*network.Node]*selection),
		loads:   make(map[*network.Node]float64),
		visits:  make(map[*network.Node]int),
		cdef:    opt.Library.DefaultLoad(),
		relax:   DefaultRelax,
		workers: exec.Workers(opt.Workers),
		obs:     newStateObs(opt.Obs),
	}
	if opt.Relax != nil {
		s.relax = *opt.Relax
	}
	s.poLoad = opt.OutputLoad
	if s.poLoad == 0 {
		s.poLoad = 2 * s.cdef
	}
	if opt.Backend == BackendCuts {
		span := opt.Obs.StartCtx(ctx, "mapper.cuts")
		cm, err := newCutMatcher(ctx, sub, opt)
		span.End()
		if err != nil {
			return nil, err
		}
		s.matcher = cm
	}
	span := opt.Obs.StartCtx(ctx, "mapper.curves")
	span.SetAttr("workers", s.workers).SetAttr("tree_mode", opt.TreeMode).SetAttr("backend", opt.Backend.String())
	err := s.postorder(ctx)
	span.SetAttr("nodes", len(s.curves))
	span.End()
	if err != nil {
		return nil, err
	}
	span = opt.Obs.StartCtx(ctx, "mapper.select")
	err = s.preorder(ctx)
	span.End()
	if err != nil {
		return nil, err
	}
	span = opt.Obs.StartCtx(ctx, "mapper.extract")
	defer span.End()
	return s.extract()
}

// postorder computes the power-delay (or area-delay) curve of every node
// (Subsection 3.2.1). With more than one worker the independent curve
// computations fan out across the pool: per tree in TreeMode, per
// topological level on the DAG otherwise. Both schedules only ever read
// curves of strictly earlier tasks, so the results match the sequential
// walk exactly.
func (s *state) postorder(ctx context.Context) error {
	var internal []*network.Node
	for _, n := range s.sub.TopoOrder() {
		if n.IsSource() {
			arr := 0.0
			if s.opt.PIArrival != nil {
				arr = s.opt.PIArrival[n.Name]
			}
			s.curves[n] = &Curve{Points: []Point{{Arrival: arr}}}
			continue
		}
		internal = append(internal, n)
	}
	if s.workers <= 1 {
		for _, n := range internal {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("mapper: %w", err)
			}
			c, err := s.curveAt(ctx, n, 1, nil)
			if err != nil {
				return err
			}
			s.install(n, c)
		}
		return nil
	}
	if s.opt.TreeMode && s.opt.Backend != BackendCuts {
		return s.postorderTrees(ctx, internal)
	}
	return s.postorderLevels(ctx, internal)
}

// postorderLevels schedules the DAG by dependency level: every match at a
// node only reads curves of its match inputs, which sit on strictly
// smaller levels, so all nodes of one level are independent. For the
// structural backend the dependencies are the network fanins (matches stay
// inside the fanin cone); cut matches may bind any topologically earlier
// node as a leaf, so the cut backend levels by its precomputed leaf sets.
// Curves are installed into s.curves between levels — tasks never write
// shared state.
func (s *state) postorderLevels(ctx context.Context, internal []*network.Node) error {
	depsOf := func(n *network.Node) []*network.Node { return n.Fanin }
	if cm, ok := s.matcher.(*cutMatcher); ok {
		depsOf = cm.depsOf
	}
	level := make(map[*network.Node]int, len(internal))
	var groups [][]*network.Node
	for _, n := range internal { // topo order: dependency levels already known
		l := 0
		for _, f := range depsOf(n) {
			if !f.IsSource() {
				if fl := level[f] + 1; fl > l {
					l = fl
				}
			}
		}
		level[n] = l
		if l == len(groups) {
			groups = append(groups, nil)
		}
		groups[l] = append(groups[l], n)
	}
	for _, g := range groups {
		budget := s.workers / len(g)
		curves, err := exec.Map(exec.WithLabel(ctx, "mapper.levels"), s.workers, len(g), func(ctx context.Context, i int) (*Curve, error) {
			return s.curveAt(ctx, g[i], budget, nil)
		})
		if err != nil {
			return err
		}
		for i, c := range curves {
			s.install(g[i], c)
		}
	}
	return nil
}

// postorderTrees schedules TreeMode by tree: the partition roots every
// node whose fanout count differs from one, and since tree-mode matches
// never cross a multi-fanout point, a match's inputs are either earlier
// nodes of the same tree or roots of whole earlier trees. Trees of one
// tree-level are covered concurrently; within a task the tree's own
// in-flight curves live in a task-local overlay until the level barrier.
func (s *state) postorderTrees(ctx context.Context, internal []*network.Node) error {
	root := make(map[*network.Node]*network.Node, len(internal))
	for i := len(internal) - 1; i >= 0; i-- { // reverse topo: fanouts known
		n := internal[i]
		if r, ok := singleFanoutRoot(root, n); ok {
			root[n] = r
		} else {
			root[n] = n
		}
	}
	trees := make(map[*network.Node][]*network.Node, len(internal))
	var roots []*network.Node
	for _, n := range internal { // topo order within each tree
		trees[root[n]] = append(trees[root[n]], n)
		if root[n] == n {
			// The root is the topmost (hence last) member of its tree, so
			// this collects roots by tree-completion order: every tree a
			// later tree reads across the partition is already listed.
			roots = append(roots, n)
		}
	}
	// A tree's level is one past the deepest tree it reads across the
	// partition boundary. A cross-tree fanin is always its own tree's
	// root (a single-fanout fanin of a consumer is in the consumer's
	// tree), so walking roots in completion order resolves all levels in
	// one forward pass.
	treeLevel := make(map[*network.Node]int, len(roots))
	var groups [][]*network.Node
	for _, r := range roots {
		l := 0
		for _, n := range trees[r] {
			for _, f := range n.Fanin {
				if f.IsSource() || root[f] == r {
					continue
				}
				if fl := treeLevel[root[f]] + 1; fl > l {
					l = fl
				}
			}
		}
		treeLevel[r] = l
		for l >= len(groups) {
			groups = append(groups, nil)
		}
		groups[l] = append(groups[l], r)
	}
	for _, g := range groups {
		budget := s.workers / len(g)
		results, err := exec.Map(exec.WithLabel(ctx, "mapper.trees"), s.workers, len(g), func(ctx context.Context, i int) ([]*Curve, error) {
			nodes := trees[g[i]]
			local := make(map[*network.Node]*Curve, len(nodes))
			out := make([]*Curve, len(nodes))
			for j, n := range nodes {
				c, err := s.curveAt(ctx, n, budget, local)
				if err != nil {
					return nil, err
				}
				local[n] = c
				out[j] = c
			}
			return out, nil
		})
		if err != nil {
			return err
		}
		for i, cs := range results {
			for j, n := range trees[g[i]] {
				s.install(n, cs[j])
			}
		}
	}
	return nil
}

// singleFanoutRoot resolves the tree root inherited through a node's sole
// consumer. Nodes whose consumer lies outside the output-reachable order
// (so no root was recorded for it) start their own tree.
func singleFanoutRoot(root map[*network.Node]*network.Node, n *network.Node) (*network.Node, bool) {
	if len(n.Fanout) != 1 {
		return nil, false
	}
	r, ok := root[n.Fanout[0]]
	return r, ok
}

// install records a finished internal-node curve and feeds the audit hook.
// It runs only on the coordinator goroutine (worker tasks return curves,
// they never write shared state), so the hook sees a race-free, per-run
// deterministic sequence of curves regardless of the worker count.
func (s *state) install(n *network.Node, c *Curve) {
	s.curves[n] = c
	if s.opt.CurveAudit != nil {
		s.opt.CurveAudit(n, c)
	}
}

// curveAt builds one node's pruned curve. budget > 1 additionally fans the
// match enumeration out (used when a level has fewer nodes than workers);
// per-match point slices are concatenated in match order, so the curve fed
// to prune is identical to the sequential append order.
func (s *state) curveAt(ctx context.Context, n *network.Node, budget int, local map[*network.Node]*Curve) (*Curve, error) {
	matches := s.matcher.matchesAt(n)
	if len(matches) == 0 {
		return nil, fmt.Errorf("mapper: no library match at node %s", n.Name)
	}
	s.obs.matchesPerNode.Observe(float64(len(matches)))
	curve := &Curve{}
	if budget > 1 && len(matches) > 1 {
		parts, err := exec.Map(ctx, budget, len(matches), func(_ context.Context, j int) (*Curve, error) {
			part := &Curve{}
			s.addMatchPoints(part, n, matches[j], local)
			return part, nil
		})
		if err != nil {
			return nil, err
		}
		for _, part := range parts {
			curve.Points = append(curve.Points, part.Points...)
		}
	} else {
		for _, m := range matches {
			s.addMatchPoints(curve, n, m, local)
		}
	}
	generated := len(curve.Points)
	curve.prune(s.opt.Epsilon)
	if len(curve.Points) == 0 {
		return nil, fmt.Errorf("mapper: empty curve at node %s", n.Name)
	}
	// Stashed task-locally; read at extract for the map.site journal event.
	curve.matches = len(matches)
	s.obs.nodesCovered.Inc()
	s.obs.pointsGenerated.Add(int64(generated))
	s.obs.pointsKept.Add(int64(len(curve.Points)))
	s.obs.pointsPruned.Add(int64(generated - len(curve.Points)))
	s.obs.curveSize.Observe(float64(len(curve.Points)))
	return curve, nil
}

// curveOf resolves a node's curve through the task-local overlay used by
// the per-tree schedule; outside a tree task it reads the shared map.
func (s *state) curveOf(n *network.Node, local map[*network.Node]*Curve) *Curve {
	if c, ok := local[n]; ok {
		return c
	}
	return s.curves[n]
}

// addMatchPoints merges the input curves of one match in their common
// region and appends the resulting trade-off points (the lower-bound merge
// of [3] emerges from pruning the union afterwards). It only reads input
// curves (through the optional task-local overlay) and appends to curve,
// so concurrent calls on disjoint curves are safe.
func (s *state) addMatchPoints(curve *Curve, n *network.Node, m Match, local map[*network.Node]*Curve) {
	type inputCtx struct {
		node   *network.Node
		curve  *Curve
		delay  float64 // τ + R·C_default for this pin
		fixed  float64 // Method 1 pin-charge power, or 0 for area
		div    float64 // fanout division of the accumulated cost
		pinIdx int
	}
	ins := make([]inputCtx, len(m.Inputs))
	gateCost := 0.0
	if s.opt.Objective == AreaDelay {
		gateCost = m.Cell.Area
	} else {
		gateCost = s.opt.AreaTiebreak * m.Cell.Area
		if s.opt.PowerMethod2 {
			// Method 2 (Equation 16): price this node's own output charge
			// now, with the default load standing in for the unknown one.
			gateCost += s.env.GatePowerUW(s.cdef, n.Activity)
		}
	}
	for pin, node := range m.Inputs {
		p := m.Cell.Pins[pin]
		ic := inputCtx{
			node:   node,
			curve:  s.curveOf(node, local),
			delay:  p.Block + p.Drive*s.cdef,
			div:    s.fanoutDiv(node),
			pinIdx: pin,
		}
		if s.opt.Objective == PowerDelay && !s.opt.PowerMethod2 {
			// Method 1 (Equation 15): charge the input node's activity
			// into this pin's capacitance; the node's own output charge is
			// deferred to its mapped parent (Section 3.1).
			ic.fixed = s.env.GatePowerUW(p.Load, node.Activity)
		}
		ins[pin] = ic
	}
	// Candidate arrival times: every input point's arrival shifted by its
	// pin delay (merging in the common region). Candidates below the
	// fastest feasible arrival cannot be met by every input and are
	// dropped; near-duplicates within the ε width are merged.
	lower := math.Inf(-1)
	for _, ic := range ins {
		if len(ic.curve.Points) == 0 {
			return
		}
		if a := ic.curve.Points[0].Arrival + ic.delay; a > lower {
			lower = a
		}
	}
	var cands []float64
	for _, ic := range ins {
		for _, p := range ic.curve.Points {
			if t := p.Arrival + ic.delay; t >= lower {
				cands = append(cands, t)
			}
		}
	}
	cands = append(cands, lower)
	sort.Float64s(cands)
	spacing := s.opt.Epsilon / 2
	kept := cands[:0]
	for i, t := range cands {
		if len(kept) == 0 || t-kept[len(kept)-1] > spacing || i == len(cands)-1 {
			kept = append(kept, t)
		}
	}
	for _, t := range kept {
		arrival := math.Inf(-1)
		cost := gateCost
		drive := 0.0
		choices := make([]InputChoice, len(ins))
		ok := true
		for i, ic := range ins {
			idx := ic.curve.cheapestAtOrBefore(t - ic.delay)
			if idx < 0 {
				ok = false
				break
			}
			pt := ic.curve.Points[idx]
			if a := pt.Arrival + ic.delay; a > arrival {
				arrival = a
				drive = m.Cell.Pins[ic.pinIdx].Drive
			}
			cost += ic.fixed + pt.Cost/ic.div
			choices[i] = InputChoice{Node: ic.node, Pin: ic.pinIdx, Point: idx}
		}
		if !ok {
			continue
		}
		curve.Points = append(curve.Points, Point{
			Arrival: arrival,
			Cost:    cost,
			Cell:    m.Cell,
			Drive:   drive,
			Inputs:  choices,
			class:   m.Class,
		})
	}
}

// fanoutDiv implements the Section 3.3 heuristic: the accumulated cost of a
// multi-fanout input is divided by its fanout count, favoring solutions
// that preserve (share) multi-fanout nodes.
func (s *state) fanoutDiv(n *network.Node) float64 {
	if s.opt.TreeMode || n.Kind != network.Internal {
		return 1
	}
	if f := len(n.Fanout); f > 1 {
		return float64(f)
	}
	return 1
}

// preorder walks from each primary output, selecting at every visited node
// the minimum-cost point meeting its required time under the actual load
// (Subsections 3.2.2 and 3.2.3). Loads and selections are mutually
// dependent (the unknown-load problem), so selection runs as a small number
// of relaxation passes: each pass selects under the loads implied by the
// previous pass's netlist, and the loads are then recomputed exactly.
func (s *state) preorder(ctx context.Context) error {
	// Fix per-output required times once, using first-pass load estimates.
	s.loads = s.freshLoads(nil)
	required := make(map[string]float64, len(s.sub.Outputs))
	for _, o := range s.sub.Outputs {
		if o.Driver.IsSource() {
			continue
		}
		req, given := 0.0, false
		if s.opt.PORequired != nil {
			req, given = s.opt.PORequired[o.Name]
		}
		if !given {
			req = s.minAchievable(o.Driver) * (1 + s.relax)
		}
		required[o.Name] = req
	}
	const passes = 3
	for pass := 0; pass < passes; pass++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("mapper: %w", err)
		}
		s.obs.selectPasses.Inc()
		s.chosen = make(map[*network.Node]*selection)
		s.visits = make(map[*network.Node]int)
		for _, o := range s.sub.Outputs {
			if o.Driver.IsSource() {
				continue
			}
			if err := s.selectAt(o.Driver, required[o.Name]); err != nil {
				return err
			}
		}
		newLoads := s.freshLoads(s.chosen)
		s.obs.loadRecalcs.Inc()
		if pass == passes-1 || loadsConverged(s.loads, newLoads) {
			break
		}
		s.loads = newLoads
	}
	return nil
}

// freshLoads computes the load at every signal implied by a selection set:
// the input pin capacitances of all reachable selected gates plus the
// primary-output pads. A nil selection yields the initial estimate (output
// pads only; internal nets default to the library default load via cdef in
// the adjustment formulas).
func (s *state) freshLoads(chosen map[*network.Node]*selection) map[*network.Node]float64 {
	loads := make(map[*network.Node]float64)
	for _, o := range s.sub.Outputs {
		loads[o.Driver] += s.poLoad
	}
	if chosen == nil {
		return loads
	}
	visited := make(map[*network.Node]bool)
	var visit func(n *network.Node)
	visit = func(n *network.Node) {
		if n.IsSource() || visited[n] {
			return
		}
		visited[n] = true
		sel := chosen[n]
		if sel == nil {
			return
		}
		for _, ic := range sel.point.Inputs {
			loads[ic.Node] += sel.point.Cell.Pins[ic.Pin].Load
			visit(ic.Node)
		}
	}
	for _, o := range s.sub.Outputs {
		visit(o.Driver)
	}
	return loads
}

func loadsConverged(a, b map[*network.Node]float64) bool {
	for n, v := range b {
		if math.Abs(a[n]-v) > 1e-9 {
			return false
		}
	}
	for n, v := range a {
		if math.Abs(b[n]-v) > 1e-9 {
			return false
		}
	}
	return true
}

// loadAt returns the current load estimate at a node; nodes without an
// entry see the library default (the unknown-load assumption).
func (s *state) loadAt(n *network.Node) float64 {
	if l, ok := s.loads[n]; ok && l > 0 {
		return l
	}
	return s.cdef
}

// minAchievable is the fastest load-adjusted arrival of the node's curve.
func (s *state) minAchievable(n *network.Node) float64 {
	c := s.curves[n]
	load := s.loadAt(n)
	best := math.Inf(1)
	for _, p := range c.Points {
		if a := p.Arrival + (load-s.cdef)*p.Drive; a < best {
			best = a
		}
	}
	return best
}

const maxVisits = 6

// selectAt picks a gate at node n meeting the required time and recurses
// into the selected match's inputs. Already-mapped nodes keep their
// solution when it still meets timing (the DAG revisit rule of
// Section 3.3); otherwise they are re-selected with the tighter
// requirement. Loads are fixed for the duration of a pass.
func (s *state) selectAt(n *network.Node, required float64) error {
	if n.IsSource() {
		return nil
	}
	load := s.loadAt(n)
	adj := func(p Point) float64 { return p.Arrival + (load-s.cdef)*p.Drive }
	if sel := s.chosen[n]; sel != nil {
		if required >= sel.required-1e-12 || adj(sel.point) <= required+1e-9 {
			if required < sel.required {
				sel.required = required
			}
			return nil
		}
		if s.visits[n] >= maxVisits {
			// Keep the violating solution rather than oscillate; the final
			// report shows the true delay.
			return nil
		}
	}
	s.visits[n]++
	s.obs.nodeVisits.Inc()
	c := s.curves[n]
	bestIdx := -1
	bestCost := math.Inf(1)
	for i, p := range c.Points {
		if adj(p) <= required+1e-9 && p.Cost < bestCost {
			bestCost, bestIdx = p.Cost, i
		}
	}
	fallback := bestIdx < 0
	if fallback {
		// Infeasible required time: fall back to the fastest point.
		bestArr := math.Inf(1)
		for i, p := range c.Points {
			if a := adj(p); a < bestArr {
				bestArr, bestIdx = a, i
			}
		}
	}
	point := c.Points[bestIdx]
	s.chosen[n] = &selection{point: point, required: required, index: bestIdx, fallback: fallback}
	// Recurse with per-input required times derived from Equation 14.
	for _, ic := range point.Inputs {
		pin := point.Cell.Pins[ic.Pin]
		childReq := required - pin.Block - pin.Drive*load
		if err := s.selectAt(ic.Node, childReq); err != nil {
			return err
		}
	}
	return nil
}
