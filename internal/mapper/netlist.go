package mapper

import (
	"fmt"
	"math"
	"sort"

	"powermap/internal/bdd"
	"powermap/internal/genlib"
	"powermap/internal/network"
	"powermap/internal/power"
	"powermap/internal/prob"
)

// Gate is one mapped library-cell instance. Inputs are subject-graph nodes
// in cell pin order; the gate's output signal is the subject node Root.
type Gate struct {
	Root   *network.Node
	Cell   *genlib.Cell
	Inputs []*network.Node
}

// Netlist is a mapped circuit: library gates over subject-graph signals.
type Netlist struct {
	Name  string
	Gates []*Gate
	// Report holds the paper's three reported quantities, computed with
	// actual loads and exact activities.
	Report power.Report
	// Env is the operating point used for the power numbers.
	Env power.Environment

	sub        *network.Network
	gateByRoot map[*network.Node]*Gate
	arrival    map[*network.Node]float64
	loads      map[*network.Node]float64
	outputLoad float64
	piArrival  map[string]float64
}

// GateAt returns the gate whose output is the given subject node, or nil.
func (nl *Netlist) GateAt(n *network.Node) *Gate { return nl.gateByRoot[n] }

// Arrival returns the computed arrival time at a mapped signal.
func (nl *Netlist) Arrival(n *network.Node) float64 { return nl.arrival[n] }

// Load returns the actual capacitive load at a mapped signal.
func (nl *Netlist) Load(n *network.Node) float64 { return nl.loads[n] }

// extract walks the chosen selections from the primary outputs, builds the
// gate list, and computes the final report with actual loads.
func (s *state) extract() (*Netlist, error) {
	nl := &Netlist{
		Name:       s.sub.Name,
		Env:        s.env,
		sub:        s.sub,
		gateByRoot: make(map[*network.Node]*Gate),
		arrival:    make(map[*network.Node]float64),
		loads:      make(map[*network.Node]float64),
		outputLoad: s.poLoad,
		piArrival:  s.opt.PIArrival,
	}
	var visit func(n *network.Node) error
	visit = func(n *network.Node) error {
		if n.IsSource() || nl.gateByRoot[n] != nil {
			return nil
		}
		sel := s.chosen[n]
		if sel == nil {
			return fmt.Errorf("mapper: node %s reached without a selection", n.Name)
		}
		g := &Gate{Root: n, Cell: sel.point.Cell, Inputs: make([]*network.Node, len(sel.point.Inputs))}
		for i, ic := range sel.point.Inputs {
			g.Inputs[ic.Pin] = ic.Node
			_ = i
		}
		nl.gateByRoot[n] = g
		nl.Gates = append(nl.Gates, g)
		for _, in := range g.Inputs {
			if err := visit(in); err != nil {
				return err
			}
		}
		return nil
	}
	for _, o := range s.sub.Outputs {
		if err := visit(o.Driver); err != nil {
			return nil, err
		}
	}
	sort.SliceStable(nl.Gates, func(i, j int) bool {
		return nl.Gates[i].Root.Name < nl.Gates[j].Root.Name
	})
	s.obs.sitesSelected.Add(int64(len(nl.Gates)))
	nl.computeReport()
	s.journalNetlist(nl)
	return nl, nil
}

// computeReport fills area, delay (Equation 14 with actual loads) and
// average power (Equation 1 with exact activities) over the mapped gates.
func (nl *Netlist) computeReport() {
	var rep power.Report
	rep.Gates = len(nl.Gates)
	// Actual loads: input pin capacitances plus output pads.
	for _, g := range nl.Gates {
		rep.GateArea += g.Cell.Area
		for pin, in := range g.Inputs {
			nl.loads[in] += g.Cell.Pins[pin].Load
		}
	}
	for _, o := range nl.sub.Outputs {
		nl.loads[o.Driver] += nl.outputLoad
	}
	// Arrival times over the gate DAG.
	var arrive func(n *network.Node) float64
	arrive = func(n *network.Node) float64 {
		if a, ok := nl.arrival[n]; ok {
			return a
		}
		if n.IsSource() {
			a := 0.0
			if nl.piArrival != nil {
				a = nl.piArrival[n.Name]
			}
			nl.arrival[n] = a
			return a
		}
		g := nl.gateByRoot[n]
		nl.arrival[n] = 0 // cycle guard; gate DAGs are acyclic
		worst := 0.0
		for pin, in := range g.Inputs {
			p := g.Cell.Pins[pin]
			if a := arrive(in) + p.Block + p.Drive*nl.loads[n]; a > worst {
				worst = a
			}
		}
		nl.arrival[n] = worst
		return worst
	}
	for _, o := range nl.sub.Outputs {
		if a := arrive(o.Driver); a > rep.Delay {
			rep.Delay = a
		}
	}
	// Average power: every switched signal charges its actual load.
	counted := map[*network.Node]bool{}
	addPower := func(n *network.Node) {
		if counted[n] {
			return
		}
		counted[n] = true
		rep.PowerUW += nl.Env.GatePowerUW(nl.loads[n], n.Activity)
	}
	for _, g := range nl.Gates {
		addPower(g.Root)
		for _, in := range g.Inputs {
			addPower(in)
		}
	}
	for _, o := range nl.sub.Outputs {
		addPower(o.Driver)
	}
	nl.Report = rep
}

// Verify checks that every mapped gate's cell function, evaluated over the
// global BDDs of its input signals, equals the global BDD of its output
// signal — i.e. the mapping preserved every signal exactly. The model must
// be the one computed on the subject network.
func (nl *Netlist) Verify(model *prob.Model) error {
	mgr := model.Manager()
	for _, g := range nl.Gates {
		pinRefs := make(map[string]bdd.Ref, len(g.Inputs))
		for pin, in := range g.Inputs {
			r, ok := model.Global(in)
			if !ok {
				return fmt.Errorf("mapper: input %s of gate %s has no global BDD", in.Name, g.Root.Name)
			}
			pinRefs[g.Cell.Pins[pin].Name] = r
		}
		got, err := exprBDD(mgr, g.Cell.Expr, pinRefs)
		if err != nil {
			return fmt.Errorf("mapper: verifying gate %s (%s): %w", g.Root.Name, g.Cell.Name, err)
		}
		want, ok := model.Global(g.Root)
		if !ok {
			return fmt.Errorf("mapper: root %s has no global BDD", g.Root.Name)
		}
		if got != want {
			return fmt.Errorf("mapper: gate %s (%s) does not compute its root signal", g.Root.Name, g.Cell.Name)
		}
	}
	return nil
}

// ToNetwork reconstructs a Boolean network computing exactly what the
// mapped netlist computes: one internal node per gate, whose local function
// is the cell's SOP over pin order and whose fanins are the gate's
// pin-ordered input signals. Primary inputs keep the subject network's
// declaration order, so the result is directly comparable to the source
// network with the BDD equivalence checker. (Mapped BLIF uses .gate lines,
// which the BLIF reader does not interpret, so this is the round-trip path
// for independent verification.)
func (nl *Netlist) ToNetwork() (*network.Network, error) {
	out := network.New(nl.Name)
	clone := make(map[*network.Node]*network.Node, len(nl.Gates))
	for _, pi := range nl.sub.PIs {
		clone[pi] = out.AddPI(pi.Name)
	}
	var visit func(n *network.Node) (*network.Node, error)
	visit = func(n *network.Node) (*network.Node, error) {
		if c, ok := clone[n]; ok {
			return c, nil
		}
		if n.Kind == network.Constant {
			c := out.AddConstant(n.Name, n.Func.IsOne())
			clone[n] = c
			return c, nil
		}
		g := nl.gateByRoot[n]
		if g == nil {
			return nil, fmt.Errorf("mapper: signal %s has no gate in the netlist", n.Name)
		}
		fanins := make([]*network.Node, len(g.Inputs))
		for i, in := range g.Inputs {
			c, err := visit(in)
			if err != nil {
				return nil, err
			}
			fanins[i] = c
		}
		c := out.AddNode(n.Name, fanins, g.Cell.Cover())
		clone[n] = c
		return c, nil
	}
	for _, o := range nl.sub.Outputs {
		d, err := visit(o.Driver)
		if err != nil {
			return nil, err
		}
		out.MarkOutput(o.Name, d)
	}
	return out, nil
}

func exprBDD(mgr *bdd.Manager, e *genlib.Expr, pins map[string]bdd.Ref) (bdd.Ref, error) {
	switch e.Op {
	case genlib.OpVar:
		return pins[e.Var], nil
	case genlib.OpNot:
		k, err := exprBDD(mgr, e.Kids[0], pins)
		if err != nil {
			return bdd.False, err
		}
		return mgr.Not(k)
	case genlib.OpAnd:
		r := bdd.True
		for _, k := range e.Kids {
			kr, err := exprBDD(mgr, k, pins)
			if err != nil {
				return bdd.False, err
			}
			if r, err = mgr.And(r, kr); err != nil {
				return bdd.False, err
			}
		}
		return r, nil
	default:
		r := bdd.False
		for _, k := range e.Kids {
			kr, err := exprBDD(mgr, k, pins)
			if err != nil {
				return bdd.False, err
			}
			if r, err = mgr.Or(r, kr); err != nil {
				return bdd.False, err
			}
		}
		return r, nil
	}
}

// CellCounts returns the number of instances per cell name, sorted by name
// (for reports and tests).
func (nl *Netlist) CellCounts() []struct {
	Name  string
	Count int
} {
	m := map[string]int{}
	for _, g := range nl.Gates {
		m[g.Cell.Name]++
	}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]struct {
		Name  string
		Count int
	}, len(names))
	for i, n := range names {
		out[i].Name = n
		out[i].Count = m[n]
	}
	return out
}

// SignalPower is one row of a power breakdown.
type SignalPower struct {
	Signal   *network.Node
	Load     float64
	Activity float64
	PowerUW  float64
}

// PowerBreakdown returns the per-signal power contributions sorted from
// largest to smallest — where the microwatts actually go.
func (nl *Netlist) PowerBreakdown() []SignalPower {
	seen := map[*network.Node]bool{}
	var rows []SignalPower
	add := func(n *network.Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		rows = append(rows, SignalPower{
			Signal:   n,
			Load:     nl.loads[n],
			Activity: n.Activity,
			PowerUW:  nl.Env.GatePowerUW(nl.loads[n], n.Activity),
		})
	}
	for _, g := range nl.Gates {
		add(g.Root)
		for _, in := range g.Inputs {
			add(in)
		}
	}
	for _, o := range nl.sub.Outputs {
		add(o.Driver)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].PowerUW != rows[j].PowerUW {
			return rows[i].PowerUW > rows[j].PowerUW
		}
		return rows[i].Signal.Name < rows[j].Signal.Name
	})
	return rows
}

// OutputArrivals returns the computed arrival time of every primary output
// by name, used to derive common required times for method comparisons.
func (nl *Netlist) OutputArrivals() map[string]float64 {
	out := make(map[string]float64, len(nl.sub.Outputs))
	for _, o := range nl.sub.Outputs {
		out[o.Name] = nl.arrival[o.Driver]
	}
	return out
}

// WorstSlack returns the minimum over outputs of required - arrival for the
// given required times (missing outputs use the network delay itself).
func (nl *Netlist) WorstSlack(required map[string]float64) float64 {
	worst := math.Inf(1)
	for _, o := range nl.sub.Outputs {
		req, ok := 0.0, false
		if required != nil {
			req, ok = required[o.Name]
		}
		if !ok {
			req = nl.Report.Delay
		}
		if s := req - nl.arrival[o.Driver]; s < worst {
			worst = s
		}
	}
	return worst
}
