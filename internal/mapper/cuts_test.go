package mapper

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"powermap/internal/genlib"
	"powermap/internal/journal"
	"powermap/internal/network"
	"powermap/internal/obs"
)

func mapSmallCuts(t *testing.T, opt Options) *Netlist {
	t.Helper()
	opt.Backend = BackendCuts
	return mapSmall(t, opt)
}

func TestCutBackendMapsAndVerifies(t *testing.T) {
	for _, obj := range []Objective{AreaDelay, PowerDelay} {
		nl := mapSmallCuts(t, Options{Objective: obj})
		if len(nl.Gates) == 0 {
			t.Fatalf("%v: no gates mapped", obj)
		}
		if nl.Report.GateArea <= 0 || nl.Report.Delay <= 0 || nl.Report.PowerUW <= 0 {
			t.Errorf("%v: degenerate report: %+v", obj, nl.Report)
		}
	}
}

func TestCutBackendLUTMode(t *testing.T) {
	for _, k := range []int{2, 4, 6} {
		nl := mapSmallCuts(t, Options{Objective: PowerDelay, LUT: k})
		if len(nl.Gates) == 0 {
			t.Fatalf("lut=%d: no gates mapped", k)
		}
		for _, g := range nl.Gates {
			if !strings.HasPrefix(g.Cell.Name, "lut") {
				t.Fatalf("lut=%d: gate %s mapped to non-LUT cell %s", k, g.Root.Name, g.Cell.Name)
			}
			if g.Cell.NumInputs() > k {
				t.Fatalf("lut=%d: cell %s exceeds arity", k, g.Cell.Name)
			}
		}
	}
}

func TestLUTModeValidation(t *testing.T) {
	sub, model := subject(t, smallBlif)
	if _, err := Map(context.Background(), sub, model, Options{Library: genlib.Lib2(), LUT: 4}); err == nil {
		t.Fatal("LUT mode without the cuts backend accepted")
	}
	if _, err := Map(context.Background(), sub, model, Options{Library: genlib.Lib2(), Backend: BackendCuts, LUT: 7}); err == nil {
		t.Fatal("LUT arity 7 accepted")
	}
	if _, err := Map(context.Background(), sub, model, Options{Library: genlib.Lib2(), Backend: BackendCuts, LUT: 1}); err == nil {
		t.Fatal("LUT arity 1 accepted")
	}
}

// TestCutBackendDeterministicAcrossWorkers demands bit-identical netlists
// for every worker count, like the structural backend.
func TestCutBackendDeterministicAcrossWorkers(t *testing.T) {
	signature := func(nl *Netlist) string {
		var b strings.Builder
		for _, g := range nl.Gates {
			b.WriteString(g.Root.Name)
			b.WriteByte('=')
			b.WriteString(g.Cell.Name)
			for _, in := range g.Inputs {
				b.WriteByte(',')
				b.WriteString(in.Name)
			}
			b.WriteByte(';')
		}
		return b.String()
	}
	var want string
	for i, w := range []int{1, 2, 8} {
		nl := mapSmallCuts(t, Options{Objective: PowerDelay, Workers: w})
		if sig := signature(nl); i == 0 {
			want = sig
		} else if sig != want {
			t.Fatalf("workers=%d netlist differs:\n%s\nvs\n%s", w, sig, want)
		}
	}
}

// TestCutBackendAuditsCurves proves the non-inferiority invariant holds
// for cut-generated curves too (Lemma 3.1 is backend-independent).
func TestCutBackendAuditsCurves(t *testing.T) {
	audited := 0
	mapSmallCuts(t, Options{
		Objective: PowerDelay,
		CurveAudit: func(n *network.Node, c *Curve) {
			audited++
			for i := 1; i < len(c.Points); i++ {
				if c.Points[i].Arrival <= c.Points[i-1].Arrival {
					t.Errorf("%s: arrivals not strictly increasing at %d", n.Name, i)
				}
				if c.Points[i].Cost >= c.Points[i-1].Cost {
					t.Errorf("%s: costs not strictly decreasing at %d", n.Name, i)
				}
			}
		},
	})
	if audited == 0 {
		t.Fatal("no curves audited")
	}
}

// TestCutBackendObsCounters checks the NPN cache and AIG counters surface
// through obs.
func TestCutBackendObsCounters(t *testing.T) {
	sc := obs.New(obs.Config{})
	mapSmallCuts(t, Options{Objective: PowerDelay, Obs: sc})
	snap := sc.Snapshot()
	want := []string{
		"mapper.npn_cache_hits", "mapper.npn_cache_misses",
		"mapper.npn_classes", "mapper.cuts_enumerated",
		"aig.nodes", "aig.strash_dedup",
	}
	for _, name := range want {
		_, inCounters := snap.Counters[name]
		_, inGauges := snap.Gauges[name]
		if !inCounters && !inGauges {
			t.Errorf("metric %s missing from obs snapshot", name)
		}
	}
	if snap.Counters["mapper.npn_cache_misses"] <= 0 {
		t.Error("npn cache miss counter never incremented")
	}
}

// TestCutBackendJournalsClass checks map.site events from the cut backend
// carry the NPN class and cut leaves.
func TestCutBackendJournalsClass(t *testing.T) {
	var buf bytes.Buffer
	jr := journal.New(&buf, journal.Header{RunID: "test"})
	mapSmallCuts(t, Options{Objective: PowerDelay, Journal: jr})
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	sites := 0
	withClass := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.Contains(line, `"type":"map.site"`) {
			continue
		}
		var ev struct {
			NPNClass  string   `json:"npn_class"`
			CutLeaves []string `json:"cut_leaves"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad map.site line: %v", err)
		}
		sites++
		if ev.NPNClass != "" {
			withClass++
			if len(ev.CutLeaves) == 0 {
				t.Errorf("map.site with class %s has no cut leaves", ev.NPNClass)
			}
		}
	}
	if sites == 0 {
		t.Fatal("no map.site events journaled")
	}
	if withClass == 0 {
		t.Fatal("no map.site event carries an NPN class")
	}
}
