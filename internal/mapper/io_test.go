package mapper

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"powermap/internal/genlib"
	"powermap/internal/prob"
)

func TestMappedBLIFRoundTrip(t *testing.T) {
	sub, model := subject(t, smallBlif)
	lib := genlib.Lib2()
	nl, err := Map(context.Background(), sub, model, Options{Objective: PowerDelay, Library: lib, Relax: Float64(0.3)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nl.WriteBLIF(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, ".gate") {
		t.Fatalf("no .gate statements in output:\n%s", text)
	}
	back, err := ReadMappedBLIF(strings.NewReader(text), lib)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	// The reconstructed network must be equivalent to the subject graph.
	ok, err := prob.EquivalentOutputs(context.Background(), sub, back)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("mapped BLIF round trip changed the function:\n%s", text)
	}
	// Gate count must survive the trip.
	if got := strings.Count(text, ".gate"); got != len(nl.Gates) {
		t.Errorf("wrote %d .gate lines for %d gates", got, len(nl.Gates))
	}
}

func TestReadMappedBLIFErrors(t *testing.T) {
	lib := genlib.Lib2()
	cases := []struct{ name, text, want string }{
		{"unknown-cell", ".model m\n.inputs a b\n.outputs y\n.gate bogus a=a b=b O=y\n.end\n", "unknown cell"},
		{"unbound-pin", ".model m\n.inputs a\n.outputs y\n.gate nand2 a=a O=y\n.end\n", "unbound"},
		{"no-output", ".model m\n.inputs a b\n.outputs y\n.gate nand2 a=a b=b\n.end\n", "without output"},
		{"undriven", ".model m\n.inputs a\n.outputs y\n.end\n", "never driven"},
		{"double-drive", ".model m\n.inputs a b\n.outputs y\n.gate nand2 a=a b=b O=y\n.gate nand2 a=b b=a O=y\n.end\n", "driven twice"},
		{"bad-binding", ".model m\n.inputs a b\n.outputs y\n.gate nand2 a b O=y\n.end\n", "malformed binding"},
		{"bad-pin", ".model m\n.inputs a b\n.outputs y\n.gate nand2 x=a b=b O=y\n.end\n", "no pin"},
	}
	for _, tc := range cases {
		if _, err := ReadMappedBLIF(strings.NewReader(tc.text), lib); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestReadMappedBLIFCycle(t *testing.T) {
	lib := genlib.Lib2()
	text := ".model m\n.inputs a\n.outputs y\n.gate nand2 a=y b=a O=t\n.gate nand2 a=t b=a O=y\n.end\n"
	if _, err := ReadMappedBLIF(strings.NewReader(text), lib); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestNetlistWriteDot(t *testing.T) {
	sub, model := subject(t, smallBlif)
	lib := genlib.Lib2()
	nl, err := Map(context.Background(), sub, model, Options{Objective: PowerDelay, Library: lib, Relax: Float64(0.3)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nl.WriteDot(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "shape=box", "shape=doublecircle", "@"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
	if got := strings.Count(out, "shape=box"); got != len(nl.Gates) {
		t.Errorf("%d box nodes for %d gates", got, len(nl.Gates))
	}
}

func TestCellCoverMatchesExpr(t *testing.T) {
	lib := genlib.Lib2()
	for _, c := range lib.Cells {
		cov := c.Cover()
		n := c.NumInputs()
		for bits := 0; bits < 1<<n; bits++ {
			assign := make([]bool, n)
			m := map[string]bool{}
			for i := 0; i < n; i++ {
				assign[i] = bits>>i&1 != 0
				m[c.Pins[i].Name] = assign[i]
			}
			if cov.Eval(assign) != c.Expr.Eval(m) {
				t.Fatalf("cell %s: Cover disagrees with Expr at %b", c.Name, bits)
			}
		}
	}
}
