package mapper

import (
	"math"
	"sort"

	"powermap/internal/genlib"
	"powermap/internal/network"
)

// InputChoice records, for one input of a selected match, which point on
// the input node's curve realizes the match's arrival/cost trade-off.
type InputChoice struct {
	Node  *network.Node
	Pin   int // cell pin index at the parent gate
	Point int // index into the input node's curve
}

// Point is one non-inferior solution on a node's power-delay (or
// area-delay) curve: the arrival time at the node output assuming the
// default load, and the accumulated cost of its mapped transitive fanin
// cone excluding the node's own output charge (Method 1, Section 3.1).
type Point struct {
	Arrival float64
	Cost    float64
	// Cell is the gate matched at the node for this point (nil on source
	// nodes, whose single point represents the driver).
	Cell *genlib.Cell
	// Drive is the drive resistance used to shift this point's arrival
	// when the actual load differs from the default (Subsection 3.2.3).
	Drive float64
	// Inputs identifies the curve points chosen at inputs(n,g).
	Inputs []InputChoice
	// class is the NPN class key of the matched function for cut-backend
	// points ("" otherwise); it surfaces in the map.site journal event.
	class string
}

// Curve is a monotone non-increasing sequence of non-inferior points
// ordered by arrival (Lemma 3.1).
type Curve struct {
	Points []Point
	// matches counts the library matches enumerated at the node before
	// pruning. Written once by the task that builds the curve, read at
	// extract for the map.site journal event.
	matches int
}

// prune sorts by (arrival, cost) and removes inferior points: a point is
// kept only if no other point has both arrival ≤ and cost ≤ (with at least
// one strict). Then ε-pruning drops points whose arrival is within eps of
// the previous kept point (keeping the cheaper), bounding curve size.
func (c *Curve) prune(eps float64) {
	if len(c.Points) == 0 {
		return
	}
	sort.SliceStable(c.Points, func(i, j int) bool {
		if c.Points[i].Arrival != c.Points[j].Arrival {
			return c.Points[i].Arrival < c.Points[j].Arrival
		}
		return c.Points[i].Cost < c.Points[j].Cost
	})
	out := c.Points[:0]
	bestCost := math.Inf(1)
	for _, p := range c.Points {
		if p.Cost < bestCost-1e-15 {
			out = append(out, p)
			bestCost = p.Cost
		}
	}
	c.Points = out
	if eps <= 0 || len(c.Points) < 3 {
		return
	}
	// ε-merge: keep the first (fastest) point, then require arrivals to
	// advance by at least eps; the last (cheapest) point always survives.
	merged := c.Points[:1]
	for i := 1; i < len(c.Points); i++ {
		p := c.Points[i]
		last := &merged[len(merged)-1]
		if p.Arrival-last.Arrival < eps && i != len(c.Points)-1 {
			// Same ε-bucket: the later point is cheaper by construction.
			*last = p
			continue
		}
		merged = append(merged, p)
	}
	c.Points = merged
	// Hard cap: keep the fastest and cheapest endpoints plus evenly spaced
	// interior points, bounding downstream merge cost.
	if len(c.Points) > maxCurvePoints {
		kept := make([]Point, 0, maxCurvePoints)
		step := float64(len(c.Points)-1) / float64(maxCurvePoints-1)
		prev := -1
		for i := 0; i < maxCurvePoints; i++ {
			idx := int(float64(i)*step + 0.5)
			if idx <= prev {
				idx = prev + 1
			}
			if idx >= len(c.Points) {
				idx = len(c.Points) - 1
			}
			kept = append(kept, c.Points[idx])
			prev = idx
		}
		c.Points = kept
	}
}

// maxCurvePoints bounds a curve after pruning; the first and last points
// (fastest and cheapest solutions) are always retained.
const maxCurvePoints = 48

// cheapestAtOrBefore returns the index of the minimum-cost point whose
// arrival is ≤ t, or -1 when no point meets t. Curves are monotone, so
// that is the last point with Arrival ≤ t.
func (c *Curve) cheapestAtOrBefore(t float64) int {
	idx := -1
	for i := range c.Points {
		if c.Points[i].Arrival <= t+1e-12 {
			idx = i
		} else {
			break
		}
	}
	return idx
}

// fastest returns the index of the minimum-arrival point (0 for a
// non-empty pruned curve), or -1 when the curve is empty.
func (c *Curve) fastest() int {
	if len(c.Points) == 0 {
		return -1
	}
	return 0
}
