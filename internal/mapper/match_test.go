package mapper

import (
	"testing"

	"powermap/internal/decomp"
	"powermap/internal/genlib"
	"powermap/internal/network"
)

// and2Subject builds y = INV(NAND(a,b)) — the and2 pattern — with the
// inner NAND given a second consumer so it is a multi-fanout node hidden
// inside the and2 match.
func and2Subject() (*network.Network, *network.Node) {
	nw := network.New("and2")
	a, b := nw.AddPI("a"), nw.AddPI("b")
	nd := nw.AddNode("nd", []*network.Node{a, b}, decomp.Nand2Cover())
	y := nw.AddNode("y", []*network.Node{nd}, decomp.InvCover())
	other := nw.AddNode("other", []*network.Node{nd}, decomp.InvCover())
	nw.MarkOutput("y", y)
	nw.MarkOutput("other", other)
	return nw, y
}

// TestTreeModeExcludesMultiFanoutInterior is the tree/DAG covering
// contract: a match that hides a multi-fanout node inside its cover is
// rejected in tree mode (the DAGON partition never crosses a fanout
// point) and accepted in DAG mode (Section 3.3's fanout-division
// heuristic prices the duplication instead of forbidding it).
func TestTreeModeExcludesMultiFanoutInterior(t *testing.T) {
	lib := genlib.Lib2()
	_, y := and2Subject()

	hasCell := func(ms []Match, name string) bool {
		for _, m := range ms {
			if m.Cell.Name == name {
				return true
			}
		}
		return false
	}
	dag := newMatcher(lib, false).matchesAt(y)
	if !hasCell(dag, "and2") {
		t.Error("DAG mode did not match and2 over the multi-fanout NAND")
	}
	tree := newMatcher(lib, true).matchesAt(y)
	if hasCell(tree, "and2") {
		t.Error("tree mode matched and2 across a multi-fanout interior node")
	}
	// The root-only inverter match must survive in both modes.
	if !hasCell(dag, "inv1") || !hasCell(tree, "inv1") {
		t.Error("inverter match missing at INV root")
	}
}

// TestRootKindIndexEquivalent checks the root-kind buckets are a pure
// index: for every node of a real subject network, the bucketed matcher
// returns exactly what brute-force matching over all patterns returns.
func TestRootKindIndexEquivalent(t *testing.T) {
	lib := genlib.Lib2()
	sub, _ := subject(t, smallBlif)
	m := newMatcher(lib, false)
	for _, n := range sub.TopoOrder() {
		if n.IsSource() {
			continue
		}
		got := m.matchesAt(n)
		var want []Match
		seen := map[string]bool{}
		for _, cell := range lib.Cells {
			for _, pat := range cell.Patterns {
				for _, b := range m.matchPattern(pat, n, true) {
					if !b.complete(cell.NumInputs()) {
						continue
					}
					key := cell.Name + "|" + b.key()
					if seen[key] {
						continue
					}
					seen[key] = true
					want = append(want, Match{Cell: cell, Inputs: b.pins})
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("node %s: index found %d matches, brute force %d", n.Name, len(got), len(want))
		}
		for i := range got {
			if got[i].Cell != want[i].Cell {
				t.Fatalf("node %s match %d: index cell %s, brute force %s",
					n.Name, i, got[i].Cell.Name, want[i].Cell.Name)
			}
		}
	}
}

// TestRootKindIndexSkipsWrongRoot: an INV root must never see nand-rooted
// patterns and vice versa.
func TestRootKindIndexSkipsWrongRoot(t *testing.T) {
	lib := genlib.Lib2()
	_, y := and2Subject() // y is an INV node
	for _, m := range newMatcher(lib, false).matchesAt(y) {
		if m.Cell.Name == "nand2" {
			t.Errorf("nand2 matched at INV root %s", y.Name)
		}
	}
	nd := y.Fanin[0] // the NAND node
	for _, m := range newMatcher(lib, false).matchesAt(nd) {
		if m.Cell.Name == "inv1" {
			t.Errorf("inv1 matched at NAND root %s", nd.Name)
		}
	}
}
