package sim

import (
	"context"

	"powermap/internal/bdd"
	"powermap/internal/huffman"
	"powermap/internal/journal"
	"powermap/internal/network"
	"powermap/internal/obs"
	"powermap/internal/prob"
)

// DefaultSampleVectors is the sampling budget when the caller set neither
// a vector count nor a CI target.
const DefaultSampleVectors = 1 << 16

// AnnotateOptions configures Annotate.
type AnnotateOptions struct {
	// Policy picks the engine (exact BDDs, sampling, or auto). The zero
	// value is exact.
	Policy prob.Policy
	// Style maps sampled estimates onto per-style activities the same way
	// prob does: static uses the measured toggle rate, domino-p P(1),
	// domino-n P(0).
	Style huffman.Style
	// BDD tunes the kernel of an exact build; a wrapped bdd.ErrNodeLimit
	// from it triggers the Auto fallback to sampling.
	BDD bdd.Config
	// Sampling configures the bit-parallel engine when it runs. A zero
	// Vectors/TargetCI defaults to DefaultSampleVectors; Obs is overridden
	// by the Obs field below.
	Sampling BitwiseOptions
	// Trans, when non-nil, samples with lag-one temporally correlated
	// inputs: per-PI toggle probabilities (see LagOneSource). Exact BDDs
	// cannot express temporal correlation, so Trans forces sampling.
	Trans map[string]float64
	// Obs and Journal record which engine ran and its statistics.
	Obs     *obs.Scope
	Journal *journal.Journal
}

// AnnotateResult reports which engine annotated the network.
type AnnotateResult struct {
	// Engine is the engine that produced the annotations (never Auto).
	Engine prob.Engine
	// Model is the exact probability model (nil when sampling ran).
	Model *prob.Model
	// Sampled is the sampling engine's result (nil when exact ran).
	Sampled *BitwiseResult
	// Vectors is the sampled vector count (0 when exact ran).
	Vectors int
	// ExactErr is the node-limit error an Auto policy recovered from by
	// sampling; nil when exact succeeded or was never attempted.
	ExactErr error
}

// Annotate computes Prob1 and Activity for every reachable node of nw
// under the configured activity policy: exact global BDDs, bit-parallel
// sampling, or Auto (exact below the policy's node threshold, sampling
// above — and sampling as the fallback when an exact build exceeds the
// BDD node limit). The chosen engine is reported via the result, obs
// counters (sim.engine_exact / sim.engine_sampling) and a journal
// "activity.engine" event.
func Annotate(ctx context.Context, nw *network.Network, piProb map[string]float64, o AnnotateOptions) (*AnnotateResult, error) {
	sc := o.Obs
	res := &AnnotateResult{}
	engine := o.Policy.Decide(nw.Stats())
	if o.Trans != nil {
		engine = prob.Sampling
	}
	if engine == prob.Exact {
		span := sc.StartCtx(ctx, "sim.annotate-exact")
		model, err := prob.ComputeWith(ctx, nw, piProb, o.Style, o.BDD)
		span.End()
		if err == nil {
			sc.Counter("sim.engine_exact").Add(1)
			o.Journal.Event("activity.engine", map[string]any{
				"engine": prob.Exact.String(), "circuit": nw.Name,
			})
			res.Engine = prob.Exact
			res.Model = model
			return res, nil
		}
		if o.Policy.Engine != prob.Auto || !bdd.IsNodeLimit(err) {
			return nil, err
		}
		res.ExactErr = err
	}

	bo := o.Sampling
	bo.Obs = sc
	if bo.Vectors <= 0 && bo.TargetCI <= 0 {
		bo.Vectors = DefaultSampleVectors
	}
	if o.Trans != nil && bo.Source == nil {
		factory, err := LagOneWordFactory(nw, piProb, o.Trans)
		if err != nil {
			return nil, err
		}
		bo.Source = factory
	}
	span := sc.StartCtx(ctx, "sim.annotate-sampling")
	span.SetAttr("vectors", bo.Vectors).SetAttr("seed", bo.Seed)
	br, err := ActivitiesBitwise(ctx, nw, piProb, bo)
	span.End()
	if err != nil {
		return nil, err
	}
	for n, e := range br.Estimates {
		n.Prob1 = e.Prob1
		switch o.Style {
		case huffman.Static:
			n.Activity = e.Activity // measured toggle rate
		case huffman.DominoP:
			n.Activity = e.Prob1
		default:
			n.Activity = 1 - e.Prob1
		}
	}
	sc.Counter("sim.engine_sampling").Add(1)
	attrs := map[string]any{
		"engine":           prob.Sampling.String(),
		"circuit":          nw.Name,
		"vectors":          br.Vectors,
		"confidence":       br.Confidence,
		"ci_halfwidth_max": br.MaxActivityCI,
	}
	if res.ExactErr != nil {
		attrs["exact_error"] = res.ExactErr.Error()
	}
	o.Journal.Event("activity.engine", attrs)
	res.Engine = prob.Sampling
	res.Sampled = br
	res.Vectors = br.Vectors
	return res, nil
}
