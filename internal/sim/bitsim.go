package sim

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"powermap/internal/exec"
	"powermap/internal/network"
	"powermap/internal/obs"
	"powermap/internal/sop"
)

// This file implements the bit-parallel sampling engine: 64 sample lanes
// per uint64 word, evaluated over a precompiled per-node plan instead of
// the scalar engine's per-vector map allocations.
//
// Lane layout is SERIAL: a stream of draws d = 0, 1, 2, ... maps draw d to
// bit (d mod 64) of word number (d div 64). Draw 0 is the predecessor
// vector (the scalar engines' initial `prev` draw) and draws 1..vectors
// are the counted vectors, exactly mirroring ActivitiesFrom. Because a
// word then holds 64 *consecutive* draws of one stream, toggles are a
// shift-XOR away:
//
//	toggle bit b of word w  =  w[b] XOR w[b-1]   (carrying the top bit of
//	                                              the previous word into b=0)
//
// and the engine's one/toggle counts are bit-identical to the scalar
// engine fed the same draw sequence — the property the cross-engine tests
// pin down.

// WordLanes is the number of sample lanes packed per machine word.
const WordLanes = 64

// WordSource draws primary-input sample words: Draw fills dst[i] with the
// next `lanes` serial draws of PI i (in nw.PIs order), draw j of the call
// in bit j. lanes is always in [1, WordLanes]; bits at and above `lanes`
// are ignored by the engine. Implementations must consume underlying
// randomness for exactly `lanes` draws so that packed scalar sources stay
// transcript-aligned with their scalar counterparts.
type WordSource interface {
	Draw(dst []uint64, lanes int)
}

// independentWords is the fast path for temporally and spatially
// independent inputs: one RNG draw per PI per word when p = 0.5, per-lane
// Bernoulli draws otherwise.
type independentWords struct {
	r     *rand.Rand
	probs []float64
}

// IndependentWords returns a WordSource with independent inputs,
// P(pi=1) from piProb (default 0.5), seeded like IndependentSource.
func IndependentWords(nw *network.Network, piProb map[string]float64, seed int64) WordSource {
	s := &independentWords{r: rand.New(rand.NewSource(seed)), probs: make([]float64, len(nw.PIs))}
	for i, pi := range nw.PIs {
		p, ok := piProb[pi.Name]
		if !ok {
			p = 0.5
		}
		s.probs[i] = p
	}
	return s
}

func (s *independentWords) Draw(dst []uint64, lanes int) {
	for i, p := range s.probs {
		if p == 0.5 {
			// All 64 lanes in one draw; surplus bits beyond `lanes` are
			// masked by the engine and cost nothing.
			dst[i] = s.r.Uint64()
			continue
		}
		var w uint64
		for b := 0; b < lanes; b++ {
			if s.r.Float64() < p {
				w |= 1 << uint(b)
			}
		}
		dst[i] = w
	}
}

// packedVectors adapts a scalar VectorSource into a WordSource by drawing
// one scalar vector per lane. The adapter consumes exactly `lanes` scalar
// draws per call, so a packed source replays the same transcript as the
// scalar engine reading the same VectorSource — the bridge behind the
// cross-engine bit-identity tests and the correlated (lag-one) sources.
type packedVectors struct {
	src   VectorSource
	pis   []*network.Node
	named map[string]bool
}

// PackVectors adapts a scalar VectorSource to the word-level engine.
func PackVectors(nw *network.Network, src VectorSource) WordSource {
	return &packedVectors{src: src, pis: nw.PIs, named: make(map[string]bool, len(nw.PIs))}
}

func (s *packedVectors) Draw(dst []uint64, lanes int) {
	for i := range dst {
		dst[i] = 0
	}
	for b := 0; b < lanes; b++ {
		s.src(s.named)
		for i, pi := range s.pis {
			if s.named[pi.Name] {
				dst[i] |= 1 << uint(b)
			}
		}
	}
}

// bitLit is one literal of a compiled cube: the fanin's slot in the
// program's word array, complemented when neg is set.
type bitLit struct {
	slot int32
	neg  bool
}

type bitKind uint8

const (
	bitInternal bitKind = iota
	bitPI
	bitConst0
	bitConst1
)

// bitNode is one node's precompiled evaluation plan.
type bitNode struct {
	kind  bitKind
	pi    int32      // PI word index for bitPI
	cubes [][]bitLit // SOP plan for bitInternal: OR of ANDs of literals
}

// Program is a network levelized and compiled for word-level evaluation:
// one slot per reachable node in topological order, each internal node's
// sop.Cover lowered to word-wide AND/OR/NOT over fanin slots.
type Program struct {
	// Order is the topological order the slots follow (fanins first).
	Order []*network.Node
	nodes []bitNode
	npis  int
}

// CompileProgram levelizes nw once and compiles every reachable node's
// cover into a word-level evaluation plan. The program only reads the
// network, so one compile may serve many concurrent chunk simulations.
func CompileProgram(nw *network.Network) *Program {
	order := nw.TopoOrder()
	slot := make(map[*network.Node]int32, len(order))
	piIdx := make(map[*network.Node]int32, len(nw.PIs))
	for i, pi := range nw.PIs {
		piIdx[pi] = int32(i)
	}
	p := &Program{Order: order, nodes: make([]bitNode, len(order)), npis: len(nw.PIs)}
	for i, n := range order {
		slot[n] = int32(i)
		switch {
		case n.Kind == network.PI:
			p.nodes[i] = bitNode{kind: bitPI, pi: piIdx[n]}
		case n.Func.IsZero():
			p.nodes[i] = bitNode{kind: bitConst0}
		case n.Func.IsOne():
			p.nodes[i] = bitNode{kind: bitConst1}
		default:
			cubes := make([][]bitLit, 0, len(n.Func.Cubes))
			for _, c := range n.Func.Cubes {
				lits := make([]bitLit, 0, len(c))
				for v, l := range c {
					if l == sop.DC {
						continue
					}
					lits = append(lits, bitLit{slot: slot[n.Fanin[v]], neg: l == sop.Neg})
				}
				cubes = append(cubes, lits)
			}
			p.nodes[i] = bitNode{kind: bitInternal, cubes: cubes}
		}
	}
	return p
}

// eval computes one word per node from one word per PI.
func (p *Program) eval(piWords, words []uint64) {
	for i := range p.nodes {
		bn := &p.nodes[i]
		switch bn.kind {
		case bitPI:
			words[i] = piWords[bn.pi]
		case bitConst0:
			words[i] = 0
		case bitConst1:
			words[i] = ^uint64(0)
		default:
			var acc uint64
			for _, cube := range bn.cubes {
				w := ^uint64(0) // empty cube (all DC) is the tautology
				for _, l := range cube {
					fw := words[l.slot]
					if l.neg {
						fw = ^fw
					}
					if w &= fw; w == 0 {
						break
					}
				}
				if acc |= w; acc == ^uint64(0) {
					break
				}
			}
			words[i] = acc
		}
	}
}

// simWords simulates one chunk of `vectors` counted draws (plus the
// uncounted predecessor draw 0) and accumulates, per node slot:
//
//	ones[i]    — count of draws d in [1, vectors] with value 1
//	toggles[i] — count of d in [1, vectors] with value(d) != value(d-1)
//	pairs[i]   — count of d in [2, vectors] where draws d and d-1 both
//	             toggled (the lag-one toggle co-occurrence behind the
//	             activity CI's autocovariance correction)
//
// Returns the number of node-words evaluated.
func (p *Program) simWords(src WordSource, vectors int, ones, toggles, pairs []int64) int64 {
	draws := vectors + 1
	piWords := make([]uint64, p.npis)
	words := make([]uint64, len(p.nodes))
	prevBit := make([]uint64, len(p.nodes))    // last valid lane of the previous word (0/1)
	prevToggle := make([]uint64, len(p.nodes)) // last valid lane of the previous toggle word
	evaluated := int64(0)
	first := true
	for done := 0; done < draws; done += WordLanes {
		lanes := draws - done
		if lanes > WordLanes {
			lanes = WordLanes
		}
		src.Draw(piWords, lanes)
		p.eval(piWords, words)
		evaluated += int64(len(p.nodes))
		mask := ^uint64(0)
		if lanes < WordLanes {
			mask = 1<<uint(lanes) - 1
		}
		countMask := mask
		if first {
			countMask &^= 1 // lane 0 of the first word is the uncounted predecessor
		}
		for i, w := range words {
			ones[i] += int64(bits.OnesCount64(w & countMask))
			tog := (w ^ ((w << 1) | prevBit[i])) & countMask
			toggles[i] += int64(bits.OnesCount64(tog))
			// Pair bit b = toggle(b) AND toggle(b-1); the first counted
			// toggle's predecessor bit is already masked out of tog.
			pairs[i] += int64(bits.OnesCount64(tog & ((tog << 1) | prevToggle[i])))
			prevBit[i] = (w >> uint(lanes-1)) & 1
			prevToggle[i] = (tog >> uint(lanes-1)) & 1
		}
		first = false
	}
	return evaluated
}

// DefaultConfidence is the confidence level of the reported intervals when
// BitwiseOptions.Confidence is zero.
const DefaultConfidence = 0.95

// DefaultMaxVectors caps sequential-batch (TargetCI) sampling when
// BitwiseOptions.MaxVectors is zero.
const DefaultMaxVectors = 1 << 20

// ciBatchChunks is the number of chunks drawn per sequential batch in
// TargetCI mode. The stop rule is evaluated only at batch boundaries, so
// the sampled stream — and therefore the estimate — depends only on
// (seed, chunk size, target), never on the worker count.
const ciBatchChunks = 16

// zScore converts a two-sided confidence level to its standard-normal
// quantile, e.g. 0.95 → 1.9600.
func zScore(confidence float64) float64 {
	return math.Sqrt2 * math.Erfinv(confidence)
}

// BitwiseOptions configures ActivitiesBitwise.
type BitwiseOptions struct {
	// Vectors is the fixed sample budget. Ignored when TargetCI > 0.
	Vectors int
	// Seed is the base Monte-Carlo seed; chunk c draws from
	// mixSeed(Seed, c), the same scheme as ActivitiesParallel.
	Seed int64
	// Workers bounds the chunk pool (<= 0: one per CPU). The chunk
	// partition depends only on (Vectors, Seed, ChunkVectors), so counts
	// are bit-identical for every worker count.
	Workers int
	// Confidence is the two-sided level of the reported interval
	// half-widths (0 selects DefaultConfidence).
	Confidence float64
	// TargetCI, when positive, switches to sequential batching: chunks are
	// drawn in fixed batches until every node's activity CI half-width is
	// at or below this target, or MaxVectors is reached.
	TargetCI float64
	// MaxVectors caps TargetCI mode (0 selects DefaultMaxVectors).
	MaxVectors int
	// ChunkVectors overrides the per-chunk vector count (0 selects the
	// scalar engine's chunk size, keeping packed sources stream-compatible
	// with ActivitiesParallel). Tests use small values to hit word- and
	// chunk-boundary masking.
	ChunkVectors int
	// Source, when non-nil, supplies the word stream of the chunk with the
	// given mixed seed, replacing the default IndependentWords stream.
	// Each call must return a fresh, independently seeded source.
	Source func(chunkSeed int64) WordSource
	// Obs receives sim.lanes_simulated / sim.words_evaluated counters and
	// the sim.ci_halfwidth_max gauge; nil disables instrumentation.
	Obs *obs.Scope
}

// BitwiseResult is the outcome of one bit-parallel sampling run.
type BitwiseResult struct {
	// Estimates holds per-node estimates with exact integer counts and
	// confidence-interval half-widths at the configured level.
	Estimates map[*network.Node]Estimate
	// Vectors is the number of counted sample vectors actually drawn
	// (fixed mode: the requested budget; TargetCI mode: a multiple of the
	// batch size).
	Vectors int
	// Confidence echoes the interval level of the estimates.
	Confidence float64
	// MaxActivityCI is the largest activity CI half-width over all nodes —
	// the quantity the TargetCI stop rule drives below the target.
	MaxActivityCI float64
	// WordsEvaluated counts node-word evaluations (the engine's work unit).
	WordsEvaluated int64
}

// bitCounts is one chunk's contribution.
type bitCounts struct {
	ones, toggles, pairs []int64
	words                int64
}

// ActivitiesBitwise estimates signal probabilities and toggle activities
// with the bit-parallel engine: the vector stream is split into fixed-size
// chunks, each simulated 64 lanes at a time from its own mixSeed-derived
// stream, and the integer counts are summed in chunk order. Counts are
// bit-identical for every worker count; with a packed IndependentSource
// stream and the default chunk size they are bit-identical to
// ActivitiesParallel on the same (vectors, seed).
func ActivitiesBitwise(ctx context.Context, nw *network.Network, piProb map[string]float64, o BitwiseOptions) (*BitwiseResult, error) {
	if o.TargetCI <= 0 && o.Vectors <= 0 {
		return nil, fmt.Errorf("sim: need a positive vector count or CI target, got %d vectors", o.Vectors)
	}
	for name, p := range piProb {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("sim: P(%s=1) = %v out of [0,1]", name, p)
		}
	}
	conf := o.Confidence
	if conf == 0 {
		conf = DefaultConfidence
	}
	if conf <= 0 || conf >= 1 {
		return nil, fmt.Errorf("sim: confidence level %v out of (0,1)", conf)
	}
	chunkLen := o.ChunkVectors
	if chunkLen <= 0 {
		chunkLen = mcChunk
	}
	source := o.Source
	if source == nil {
		source = func(chunkSeed int64) WordSource { return IndependentWords(nw, piProb, chunkSeed) }
	}
	prog := CompileProgram(nw)
	nslots := len(prog.Order)
	z := zScore(conf)
	workers := exec.Workers(o.Workers)

	total := bitCounts{ones: make([]int64, nslots), toggles: make([]int64, nslots), pairs: make([]int64, nslots)}
	totVectors, totChunks := 0, 0
	// runChunks simulates chunks [firstChunk, firstChunk+numChunks) across
	// the pool and merges their counts (order-independent integer sums).
	runChunks := func(firstChunk, numChunks int, chunkVectors func(c int) int) error {
		parts, err := exec.Map(exec.WithLabel(ctx, "sim.bitwise"), workers, numChunks, func(ctx context.Context, i int) (bitCounts, error) {
			if err := ctx.Err(); err != nil {
				return bitCounts{}, fmt.Errorf("sim: %w", err)
			}
			c := firstChunk + i
			cc := bitCounts{ones: make([]int64, nslots), toggles: make([]int64, nslots), pairs: make([]int64, nslots)}
			cc.words = prog.simWords(source(mixSeed(o.Seed, c)), chunkVectors(c), cc.ones, cc.toggles, cc.pairs)
			return cc, nil
		})
		if err != nil {
			return err
		}
		for _, cc := range parts {
			for i := 0; i < nslots; i++ {
				total.ones[i] += cc.ones[i]
				total.toggles[i] += cc.toggles[i]
				total.pairs[i] += cc.pairs[i]
			}
			total.words += cc.words
		}
		return nil
	}
	// maxActivityCI evaluates the stop-rule statistic over all node slots.
	maxActivityCI := func() float64 {
		worst := 0.0
		for i := 0; i < nslots; i++ {
			if ci := activityCI(total.toggles[i], total.pairs[i], totVectors, totChunks, z); ci > worst {
				worst = ci
			}
		}
		return worst
	}

	if o.TargetCI > 0 {
		maxVectors := o.MaxVectors
		if maxVectors <= 0 {
			maxVectors = DefaultMaxVectors
		}
		for {
			first := totChunks
			if err := runChunks(first, ciBatchChunks, func(int) int { return chunkLen }); err != nil {
				return nil, err
			}
			totChunks += ciBatchChunks
			totVectors += ciBatchChunks * chunkLen
			if maxActivityCI() <= o.TargetCI || totVectors >= maxVectors {
				break
			}
		}
	} else {
		chunks := (o.Vectors + chunkLen - 1) / chunkLen
		if err := runChunks(0, chunks, func(c int) int {
			if c == chunks-1 {
				return o.Vectors - c*chunkLen
			}
			return chunkLen
		}); err != nil {
			return nil, err
		}
		totChunks = chunks
		totVectors = o.Vectors
	}

	res := &BitwiseResult{
		Estimates:      make(map[*network.Node]Estimate, nslots),
		Vectors:        totVectors,
		Confidence:     conf,
		WordsEvaluated: total.words,
	}
	for i, n := range prog.Order {
		e := Estimate{
			Prob1:    float64(total.ones[i]) / float64(totVectors),
			Activity: float64(total.toggles[i]) / float64(totVectors),
			Ones:     total.ones[i],
			Toggles:  total.toggles[i],
			Vectors:  totVectors,
		}
		e.Prob1CI = z * math.Sqrt(e.Prob1*(1-e.Prob1)/float64(totVectors))
		e.ActivityCI = activityCI(total.toggles[i], total.pairs[i], totVectors, totChunks, z)
		if e.ActivityCI > res.MaxActivityCI {
			res.MaxActivityCI = e.ActivityCI
		}
		res.Estimates[n] = e
	}
	sc := o.Obs
	sc.Counter("sim.lanes_simulated").Add(int64(totVectors))
	sc.Counter("sim.words_evaluated").Add(total.words)
	sc.Gauge("sim.ci_halfwidth_max").SetMax(res.MaxActivityCI)
	return res, nil
}

// activityCI is the normal-approximation half-width of the mean toggle
// rate. Consecutive toggle indicators share a vector (t_d and t_{d+1} both
// involve draw d), so the sequence is 1-dependent and the naive Bernoulli
// variance undercovers; the estimator corrects with the empirical lag-one
// autocovariance from the toggle-pair counts:
//
//	Var(Ê) ≈ ( â(1-â) + 2·(p̂_tt - â²) ) / n
//
// where â = toggles/n and p̂_tt = pairs/(n - chunks) (each chunk of length
// ℓ contributes ℓ-1 adjacent toggle pairs).
func activityCI(toggles, pairs int64, vectors, chunks int, z float64) float64 {
	if vectors <= 0 {
		return 0
	}
	n := float64(vectors)
	a := float64(toggles) / n
	v := a * (1 - a)
	if den := vectors - chunks; den > 0 {
		cov := float64(pairs)/float64(den) - a*a
		v += 2 * cov
	}
	if v < 0 {
		v = 0
	}
	return z * math.Sqrt(v/n)
}

// ActivitiesBitwiseFrom is the bit-parallel counterpart of ActivitiesFrom:
// one uninterrupted stream from a single WordSource, counted with the same
// serial semantics (draw 0 is the uncounted predecessor). Feeding it
// PackVectors(nw, src) yields ones/toggle counts bit-identical to
// ActivitiesFrom(nw, src, vectors) on the same source transcript.
func ActivitiesBitwiseFrom(nw *network.Network, src WordSource, vectors int) (map[*network.Node]Estimate, error) {
	if vectors <= 0 {
		return nil, fmt.Errorf("sim: need a positive vector count, got %d", vectors)
	}
	prog := CompileProgram(nw)
	nslots := len(prog.Order)
	ones := make([]int64, nslots)
	toggles := make([]int64, nslots)
	pairs := make([]int64, nslots)
	prog.simWords(src, vectors, ones, toggles, pairs)
	z := zScore(DefaultConfidence)
	out := make(map[*network.Node]Estimate, nslots)
	for i, n := range prog.Order {
		e := Estimate{
			Prob1:    float64(ones[i]) / float64(vectors),
			Activity: float64(toggles[i]) / float64(vectors),
			Ones:     ones[i],
			Toggles:  toggles[i],
			Vectors:  vectors,
		}
		e.Prob1CI = z * math.Sqrt(e.Prob1*(1-e.Prob1)/float64(vectors))
		e.ActivityCI = activityCI(toggles[i], pairs[i], vectors, 1, z)
		out[n] = e
	}
	return out, nil
}
