// Package sim implements simulation-based switching-activity estimation:
//
//   - Monte-Carlo zero-delay estimation on Boolean networks, which
//     cross-validates the exact BDD probabilities of internal/prob on
//     independent random input pairs (the paper's model, Section 1.4);
//   - unit-delay glitch-aware transition counting on mapped netlists, in
//     the spirit of the general-delay estimator of Ghosh et al. that the
//     paper cites: unequal path delays cause hazard transitions that the
//     zero-delay model ignores, so glitch-aware power is an upper bound on
//     (and usually strictly above) the zero-delay estimate.
//
// Both estimators share the input-vector model: consecutive input vectors
// are drawn independently with per-input 1-probabilities.
package sim

import (
	"context"
	"fmt"
	"math/rand"

	"powermap/internal/exec"
	"powermap/internal/mapper"
	"powermap/internal/network"
	"powermap/internal/power"
)

// Estimate is a per-signal simulation result.
type Estimate struct {
	Prob1    float64 // fraction of time the signal is 1
	Activity float64 // transitions per cycle (zero-delay: 0 or 1 per pair)
}

// VectorSource draws one primary-input assignment into dst (keyed by PI
// name). Implementations may model arbitrary spatial correlation between
// inputs; temporal independence between consecutive calls is assumed by
// the zero-delay activity interpretation.
type VectorSource func(dst map[string]bool)

// IndependentSource returns a VectorSource with independent inputs:
// P(pi=1) from piProb, defaulting to 0.5.
func IndependentSource(nw *network.Network, piProb map[string]float64, seed int64) VectorSource {
	r := rand.New(rand.NewSource(seed))
	return func(dst map[string]bool) {
		for _, pi := range nw.PIs {
			p, ok := piProb[pi.Name]
			if !ok {
				p = 0.5
			}
			dst[pi.Name] = r.Float64() < p
		}
	}
}

// Activities estimates zero-delay signal probabilities and toggle
// activities for every reachable node by simulating vector pairs with
// independent inputs.
func Activities(nw *network.Network, piProb map[string]float64, vectors int, seed int64) (map[*network.Node]Estimate, error) {
	return ActivitiesFrom(nw, IndependentSource(nw, piProb, seed), vectors)
}

// ActivitiesFrom is Activities with an arbitrary input-vector source,
// enabling correlated-input experiments (Section 2.1.1).
func ActivitiesFrom(nw *network.Network, src VectorSource, vectors int) (map[*network.Node]Estimate, error) {
	if vectors <= 0 {
		return nil, fmt.Errorf("sim: need a positive vector count, got %d", vectors)
	}
	order := nw.TopoOrder()
	ones := make(map[*network.Node]int)
	toggles := make(map[*network.Node]int)
	prev := make(map[*network.Node]bool)
	cur := make(map[*network.Node]bool)
	named := make(map[string]bool, len(nw.PIs))
	draw := func(dst map[*network.Node]bool) {
		src(named)
		for _, n := range order {
			switch {
			case n.Kind == network.PI:
				dst[n] = named[n.Name]
			default:
				assign := make([]bool, len(n.Fanin))
				for i, f := range n.Fanin {
					assign[i] = dst[f]
				}
				dst[n] = n.Func.Eval(assign)
			}
		}
	}
	draw(prev)
	for v := 0; v < vectors; v++ {
		draw(cur)
		for _, n := range order {
			if cur[n] {
				ones[n]++
			}
			if cur[n] != prev[n] {
				toggles[n]++
			}
		}
		prev, cur = cur, prev
	}
	out := make(map[*network.Node]Estimate, len(order))
	for _, n := range order {
		out[n] = Estimate{
			Prob1:    float64(ones[n]) / float64(vectors),
			Activity: float64(toggles[n]) / float64(vectors),
		}
	}
	return out, nil
}

// mcChunk is the fixed Monte-Carlo chunk length of ActivitiesParallel.
// The chunk partition depends only on the vector count, never on the
// worker count, so the merged result is identical for every pool size.
const mcChunk = 512

// mixSeed derives the RNG seed of one chunk from the base seed with a
// splitmix64-style finalizer, decorrelating nearby chunk indices.
func mixSeed(seed int64, chunk int) int64 {
	z := uint64(seed) + uint64(chunk+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// ActivitiesParallel is Activities fanned out across a worker pool. The
// vector stream is split into fixed-size chunks, each simulated from its
// own seed-derived RNG stream, and the integer one/toggle counts are
// summed. Because the chunking depends only on (vectors, seed), the
// estimate is bit-identical for every workers value — including 1 — but
// it samples a different (equally valid) random stream than the
// single-stream Activities.
func ActivitiesParallel(ctx context.Context, nw *network.Network, piProb map[string]float64, vectors int, seed int64, workers int) (map[*network.Node]Estimate, error) {
	if vectors <= 0 {
		return nil, fmt.Errorf("sim: need a positive vector count, got %d", vectors)
	}
	// TopoOrder mutates node scratch flags: compute it once, up front, so
	// the chunk workers only ever read the network.
	order := nw.TopoOrder()
	chunks := (vectors + mcChunk - 1) / mcChunk
	type counts struct{ ones, toggles []int }
	parts, err := exec.Map(exec.WithLabel(ctx, "sim.mc"), exec.Workers(workers), chunks, func(ctx context.Context, c int) (counts, error) {
		if err := ctx.Err(); err != nil {
			return counts{}, fmt.Errorf("sim: %w", err)
		}
		n := mcChunk
		if c == chunks-1 {
			n = vectors - c*mcChunk
		}
		cc := counts{ones: make([]int, len(order)), toggles: make([]int, len(order))}
		simChunk(order, IndependentSource(nw, piProb, mixSeed(seed, c)), n, cc.ones, cc.toggles)
		return cc, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[*network.Node]Estimate, len(order))
	for i, n := range order {
		ones, toggles := 0, 0
		for _, cc := range parts {
			ones += cc.ones[i]
			toggles += cc.toggles[i]
		}
		out[n] = Estimate{
			Prob1:    float64(ones) / float64(vectors),
			Activity: float64(toggles) / float64(vectors),
		}
	}
	return out, nil
}

// simChunk simulates `vectors` vector pairs over a precomputed topological
// order, accumulating one/toggle counts into the per-order-index slices.
// It only reads the network, so chunks may run concurrently.
func simChunk(order []*network.Node, src VectorSource, vectors int, ones, toggles []int) {
	idx := make(map[*network.Node]int, len(order))
	for i, n := range order {
		idx[n] = i
	}
	prev := make(map[*network.Node]bool)
	cur := make(map[*network.Node]bool)
	named := make(map[string]bool)
	draw := func(dst map[*network.Node]bool) {
		src(named)
		for _, n := range order {
			if n.Kind == network.PI {
				dst[n] = named[n.Name]
				continue
			}
			assign := make([]bool, len(n.Fanin))
			for i, f := range n.Fanin {
				assign[i] = dst[f]
			}
			dst[n] = n.Func.Eval(assign)
		}
	}
	draw(prev)
	for v := 0; v < vectors; v++ {
		draw(cur)
		for _, n := range order {
			if cur[n] {
				ones[idx[n]]++
			}
			if cur[n] != prev[n] {
				toggles[idx[n]]++
			}
		}
		prev, cur = cur, prev
	}
}

// GlitchReport is the outcome of a glitch-aware netlist simulation.
type GlitchReport struct {
	// Transitions counts per-cycle transitions (including hazards) at
	// every mapped signal.
	Transitions map[*network.Node]float64
	// ZeroDelay counts per-cycle final-value toggles at the same signals
	// over the same vectors, for direct comparison.
	ZeroDelay map[*network.Node]float64
	// PowerUW and ZeroDelayPowerUW price the two activity sets with the
	// actual mapped loads (Equation 1).
	PowerUW          float64
	ZeroDelayPowerUW float64
	Vectors          int
}

// Glitch simulates the mapped netlist under a unit-delay model: after each
// input change, gate outputs update once per time step from their inputs'
// previous-step values, and every intermediate change counts as a
// transition. Transitions at a signal are therefore ≥ its zero-delay
// toggles on the same vectors.
func Glitch(nl *mapper.Netlist, sub *network.Network, piProb map[string]float64, vectors int, seed int64, env power.Environment) (*GlitchReport, error) {
	if vectors <= 0 {
		return nil, fmt.Errorf("sim: need a positive vector count, got %d", vectors)
	}
	r := rand.New(rand.NewSource(seed))
	// Collect the mapped signals: gate roots + their source inputs.
	var gates []*mapper.Gate
	signals := map[*network.Node]bool{}
	for _, g := range allGates(nl, sub) {
		gates = append(gates, g)
		signals[g.Root] = true
		for _, in := range g.Inputs {
			signals[in] = true
		}
	}
	value := map[*network.Node]bool{}
	trans := map[*network.Node]float64{}
	zero := map[*network.Node]float64{}

	evalGate := func(g *mapper.Gate, val map[*network.Node]bool) bool {
		assign := make(map[string]bool, len(g.Inputs))
		for pin, in := range g.Inputs {
			assign[g.Cell.Pins[pin].Name] = val[in]
		}
		return g.Cell.Expr.Eval(assign)
	}
	drawPIs := func() {
		for _, pi := range sub.PIs {
			p, ok := piProb[pi.Name]
			if !ok {
				p = 0.5
			}
			value[pi] = r.Float64() < p
		}
	}
	settle := func(count bool) {
		// Synchronous unit-delay relaxation to a fixed point. The netlist
		// is acyclic, so at most depth(netlist) steps are needed.
		for step := 0; step < len(gates)+1; step++ {
			next := make(map[*network.Node]bool, len(gates))
			changed := false
			for _, g := range gates {
				v := evalGate(g, value)
				next[g.Root] = v
				if v != value[g.Root] {
					changed = true
				}
			}
			if !changed {
				break
			}
			for root, v := range next {
				if v != value[root] {
					if count {
						trans[root]++
					}
					value[root] = v
				}
			}
		}
	}
	drawPIs()
	settle(false) // initialize without counting
	prevFinal := map[*network.Node]bool{}
	for s := range signals {
		prevFinal[s] = value[s]
	}
	for v := 0; v < vectors; v++ {
		// New input vector: PIs toggle instantly and count as transitions.
		for _, pi := range sub.PIs {
			old := value[pi]
			p, ok := piProb[pi.Name]
			if !ok {
				p = 0.5
			}
			nv := r.Float64() < p
			value[pi] = nv
			if nv != old && signals[pi] {
				trans[pi]++
			}
		}
		settle(true)
		for s := range signals {
			if value[s] != prevFinal[s] {
				zero[s]++
			}
			prevFinal[s] = value[s]
		}
	}
	rep := &GlitchReport{
		Transitions: make(map[*network.Node]float64, len(signals)),
		ZeroDelay:   make(map[*network.Node]float64, len(signals)),
		Vectors:     vectors,
	}
	for s := range signals {
		rep.Transitions[s] = trans[s] / float64(vectors)
		rep.ZeroDelay[s] = zero[s] / float64(vectors)
		load := nl.Load(s)
		rep.PowerUW += env.GatePowerUW(load, rep.Transitions[s])
		rep.ZeroDelayPowerUW += env.GatePowerUW(load, rep.ZeroDelay[s])
	}
	return rep, nil
}

// allGates returns the netlist's gates reachable from the outputs (the
// Netlist already stores exactly those).
func allGates(nl *mapper.Netlist, sub *network.Network) []*mapper.Gate {
	_ = sub
	return nl.Gates
}
