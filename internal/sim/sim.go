// Package sim implements simulation-based switching-activity estimation
// on Boolean networks: Monte-Carlo zero-delay estimation that
// cross-validates the exact BDD probabilities of internal/prob on random
// input streams (the paper's model, Section 1.4).
//
// Two engines share the vector-stream semantics (an uncounted predecessor
// draw followed by the counted vectors):
//
//   - the scalar engines (Activities, ActivitiesFrom, ActivitiesParallel)
//     simulate one map-based vector at a time;
//   - the bit-parallel engine (ActivitiesBitwise, ActivitiesBitwiseFrom)
//     packs 64 sample lanes per uint64 word over a precompiled evaluation
//     plan, reports normal-approximation confidence intervals, and fed the
//     same draw transcript produces bit-identical one/toggle counts.
//
// Annotate dispatches between exact BDDs and the sampling engine under a
// prob.Policy (exact, sampling, or auto with a node-limit fallback).
// Unit-delay glitch-aware counting on mapped netlists lives in
// internal/glitch.
package sim

import (
	"context"
	"fmt"
	"math/rand"

	"powermap/internal/exec"
	"powermap/internal/network"
)

// Estimate is a per-signal simulation result.
type Estimate struct {
	Prob1    float64 // fraction of time the signal is 1
	Activity float64 // transitions per cycle (zero-delay: 0 or 1 per pair)
	// Ones, Toggles and Vectors are the exact integer counts behind Prob1
	// and Activity; the cross-engine tests compare them bit-for-bit
	// between the scalar and bit-parallel engines.
	Ones    int64
	Toggles int64
	Vectors int
	// Prob1CI and ActivityCI are normal-approximation confidence-interval
	// half-widths, filled by the sampling engine (ActivitiesBitwise) at
	// its configured confidence level; zero when not computed.
	Prob1CI    float64
	ActivityCI float64
}

// VectorSource draws one primary-input assignment into dst (keyed by PI
// name). Implementations may model arbitrary spatial correlation between
// inputs; temporal independence between consecutive calls is assumed by
// the zero-delay activity interpretation.
type VectorSource func(dst map[string]bool)

// IndependentSource returns a VectorSource with independent inputs:
// P(pi=1) from piProb, defaulting to 0.5.
func IndependentSource(nw *network.Network, piProb map[string]float64, seed int64) VectorSource {
	r := rand.New(rand.NewSource(seed))
	return func(dst map[string]bool) {
		for _, pi := range nw.PIs {
			p, ok := piProb[pi.Name]
			if !ok {
				p = 0.5
			}
			dst[pi.Name] = r.Float64() < p
		}
	}
}

// Activities estimates zero-delay signal probabilities and toggle
// activities for every reachable node by simulating vector pairs with
// independent inputs.
func Activities(nw *network.Network, piProb map[string]float64, vectors int, seed int64) (map[*network.Node]Estimate, error) {
	return ActivitiesFrom(nw, IndependentSource(nw, piProb, seed), vectors)
}

// ActivitiesFrom is Activities with an arbitrary input-vector source,
// enabling correlated-input experiments (Section 2.1.1).
func ActivitiesFrom(nw *network.Network, src VectorSource, vectors int) (map[*network.Node]Estimate, error) {
	if vectors <= 0 {
		return nil, fmt.Errorf("sim: need a positive vector count, got %d", vectors)
	}
	order := nw.TopoOrder()
	ones := make(map[*network.Node]int)
	toggles := make(map[*network.Node]int)
	prev := make(map[*network.Node]bool)
	cur := make(map[*network.Node]bool)
	named := make(map[string]bool, len(nw.PIs))
	draw := func(dst map[*network.Node]bool) {
		src(named)
		for _, n := range order {
			switch {
			case n.Kind == network.PI:
				dst[n] = named[n.Name]
			default:
				assign := make([]bool, len(n.Fanin))
				for i, f := range n.Fanin {
					assign[i] = dst[f]
				}
				dst[n] = n.Func.Eval(assign)
			}
		}
	}
	draw(prev)
	for v := 0; v < vectors; v++ {
		draw(cur)
		for _, n := range order {
			if cur[n] {
				ones[n]++
			}
			if cur[n] != prev[n] {
				toggles[n]++
			}
		}
		prev, cur = cur, prev
	}
	out := make(map[*network.Node]Estimate, len(order))
	for _, n := range order {
		out[n] = Estimate{
			Prob1:    float64(ones[n]) / float64(vectors),
			Activity: float64(toggles[n]) / float64(vectors),
			Ones:     int64(ones[n]),
			Toggles:  int64(toggles[n]),
			Vectors:  vectors,
		}
	}
	return out, nil
}

// mcChunk is the fixed Monte-Carlo chunk length of ActivitiesParallel.
// The chunk partition depends only on the vector count, never on the
// worker count, so the merged result is identical for every pool size.
const mcChunk = 512

// mixSeed derives the RNG seed of one chunk from the base seed with a
// splitmix64-style finalizer, decorrelating nearby chunk indices.
func mixSeed(seed int64, chunk int) int64 {
	z := uint64(seed) + uint64(chunk+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// ActivitiesParallel is Activities fanned out across a worker pool. The
// vector stream is split into fixed-size chunks, each simulated from its
// own seed-derived RNG stream, and the integer one/toggle counts are
// summed. Because the chunking depends only on (vectors, seed), the
// estimate is bit-identical for every workers value — including 1 — but
// it samples a different (equally valid) random stream than the
// single-stream Activities.
func ActivitiesParallel(ctx context.Context, nw *network.Network, piProb map[string]float64, vectors int, seed int64, workers int) (map[*network.Node]Estimate, error) {
	if vectors <= 0 {
		return nil, fmt.Errorf("sim: need a positive vector count, got %d", vectors)
	}
	// TopoOrder mutates node scratch flags: compute it once, up front, so
	// the chunk workers only ever read the network.
	order := nw.TopoOrder()
	chunks := (vectors + mcChunk - 1) / mcChunk
	type counts struct{ ones, toggles []int }
	parts, err := exec.Map(exec.WithLabel(ctx, "sim.mc"), exec.Workers(workers), chunks, func(ctx context.Context, c int) (counts, error) {
		if err := ctx.Err(); err != nil {
			return counts{}, fmt.Errorf("sim: %w", err)
		}
		n := mcChunk
		if c == chunks-1 {
			n = vectors - c*mcChunk
		}
		cc := counts{ones: make([]int, len(order)), toggles: make([]int, len(order))}
		simChunk(order, IndependentSource(nw, piProb, mixSeed(seed, c)), n, cc.ones, cc.toggles)
		return cc, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[*network.Node]Estimate, len(order))
	for i, n := range order {
		ones, toggles := 0, 0
		for _, cc := range parts {
			ones += cc.ones[i]
			toggles += cc.toggles[i]
		}
		out[n] = Estimate{
			Prob1:    float64(ones) / float64(vectors),
			Activity: float64(toggles) / float64(vectors),
			Ones:     int64(ones),
			Toggles:  int64(toggles),
			Vectors:  vectors,
		}
	}
	return out, nil
}

// simChunk simulates `vectors` vector pairs over a precomputed topological
// order, accumulating one/toggle counts into the per-order-index slices.
// It only reads the network, so chunks may run concurrently.
func simChunk(order []*network.Node, src VectorSource, vectors int, ones, toggles []int) {
	idx := make(map[*network.Node]int, len(order))
	for i, n := range order {
		idx[n] = i
	}
	prev := make(map[*network.Node]bool)
	cur := make(map[*network.Node]bool)
	named := make(map[string]bool)
	draw := func(dst map[*network.Node]bool) {
		src(named)
		for _, n := range order {
			if n.Kind == network.PI {
				dst[n] = named[n.Name]
				continue
			}
			assign := make([]bool, len(n.Fanin))
			for i, f := range n.Fanin {
				assign[i] = dst[f]
			}
			dst[n] = n.Func.Eval(assign)
		}
	}
	draw(prev)
	for v := 0; v < vectors; v++ {
		draw(cur)
		for _, n := range order {
			if cur[n] {
				ones[idx[n]]++
			}
			if cur[n] != prev[n] {
				toggles[idx[n]]++
			}
		}
		prev, cur = cur, prev
	}
}
