package sim

import (
	"context"
	"math"
	"testing"

	"powermap/internal/blif"
	"powermap/internal/huffman"
	"powermap/internal/network"
	"powermap/internal/prob"
)

const testBlif = `
.model simtest
.inputs a b c d
.outputs y z
.names a b t1
11 1
.names t1 c t2
1- 1
-1 1
.names t2 d y
10 1
01 1
.names a c z
11 1
.end
`

func mustParse(t *testing.T, text string) *network.Network {
	t.Helper()
	nw, err := blif.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestActivitiesMatchBDD(t *testing.T) {
	nw := mustParse(t, testBlif)
	piProb := map[string]float64{"a": 0.3, "b": 0.6, "c": 0.5, "d": 0.8}
	if _, err := prob.Compute(nw, piProb, huffman.Static); err != nil {
		t.Fatal(err)
	}
	const vectors = 40000
	est, err := Activities(nw, piProb, vectors, 7)
	if err != nil {
		t.Fatal(err)
	}
	// MC standard error ~ sqrt(p(1-p)/N) <= 0.0025; allow 5 sigma.
	const tol = 0.015
	for _, n := range nw.TopoOrder() {
		e := est[n]
		if math.Abs(e.Prob1-n.Prob1) > tol {
			t.Errorf("node %s: MC prob %.4f vs BDD %.4f", n.Name, e.Prob1, n.Prob1)
		}
		if math.Abs(e.Activity-n.Activity) > tol {
			t.Errorf("node %s: MC activity %.4f vs BDD %.4f", n.Name, e.Activity, n.Activity)
		}
	}
}

func TestActivitiesValidation(t *testing.T) {
	nw := mustParse(t, testBlif)
	if _, err := Activities(nw, nil, 0, 1); err == nil {
		t.Error("zero vectors accepted")
	}
}

func TestActivitiesDeterministic(t *testing.T) {
	nw := mustParse(t, testBlif)
	a, err := Activities(nw, nil, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Activities(nw, nil, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nw.TopoOrder() {
		if a[n] != b[n] {
			t.Fatalf("same seed diverges at %s", n.Name)
		}
	}
}

func TestActivitiesParallelDeterministicAcrossWorkers(t *testing.T) {
	nw := mustParse(t, testBlif)
	piProb := map[string]float64{"a": 0.3, "b": 0.6, "c": 0.5, "d": 0.8}
	order := nw.TopoOrder()
	var want map[*network.Node]Estimate
	for _, w := range []int{1, 2, 8} {
		est, err := ActivitiesParallel(context.Background(), nw, piProb, 2000, 7, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if w == 1 {
			want = est
			continue
		}
		for _, n := range order {
			if est[n] != want[n] {
				t.Errorf("workers=%d node %s: %+v != sequential %+v", w, n.Name, est[n], want[n])
			}
		}
	}
}

func TestActivitiesParallelMatchesBDD(t *testing.T) {
	nw := mustParse(t, testBlif)
	piProb := map[string]float64{"a": 0.3, "b": 0.6, "c": 0.5, "d": 0.8}
	if _, err := prob.Compute(nw, piProb, huffman.Static); err != nil {
		t.Fatal(err)
	}
	est, err := ActivitiesParallel(context.Background(), nw, piProb, 40000, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 0.015
	for _, n := range nw.TopoOrder() {
		if math.Abs(est[n].Prob1-n.Prob1) > tol {
			t.Errorf("node %s: MC prob %.4f vs BDD %.4f", n.Name, est[n].Prob1, n.Prob1)
		}
	}
}
