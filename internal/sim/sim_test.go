package sim

import (
	"context"
	"math"
	"testing"

	"powermap/internal/blif"
	"powermap/internal/decomp"
	"powermap/internal/genlib"
	"powermap/internal/huffman"
	"powermap/internal/mapper"
	"powermap/internal/network"
	"powermap/internal/power"
	"powermap/internal/prob"
)

const testBlif = `
.model simtest
.inputs a b c d
.outputs y z
.names a b t1
11 1
.names t1 c t2
1- 1
-1 1
.names t2 d y
10 1
01 1
.names a c z
11 1
.end
`

func mustParse(t *testing.T, text string) *network.Network {
	t.Helper()
	nw, err := blif.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestActivitiesMatchBDD(t *testing.T) {
	nw := mustParse(t, testBlif)
	piProb := map[string]float64{"a": 0.3, "b": 0.6, "c": 0.5, "d": 0.8}
	if _, err := prob.Compute(nw, piProb, huffman.Static); err != nil {
		t.Fatal(err)
	}
	const vectors = 40000
	est, err := Activities(nw, piProb, vectors, 7)
	if err != nil {
		t.Fatal(err)
	}
	// MC standard error ~ sqrt(p(1-p)/N) <= 0.0025; allow 5 sigma.
	const tol = 0.015
	for _, n := range nw.TopoOrder() {
		e := est[n]
		if math.Abs(e.Prob1-n.Prob1) > tol {
			t.Errorf("node %s: MC prob %.4f vs BDD %.4f", n.Name, e.Prob1, n.Prob1)
		}
		if math.Abs(e.Activity-n.Activity) > tol {
			t.Errorf("node %s: MC activity %.4f vs BDD %.4f", n.Name, e.Activity, n.Activity)
		}
	}
}

func TestActivitiesValidation(t *testing.T) {
	nw := mustParse(t, testBlif)
	if _, err := Activities(nw, nil, 0, 1); err == nil {
		t.Error("zero vectors accepted")
	}
}

func TestActivitiesDeterministic(t *testing.T) {
	nw := mustParse(t, testBlif)
	a, err := Activities(nw, nil, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Activities(nw, nil, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nw.TopoOrder() {
		if a[n] != b[n] {
			t.Fatalf("same seed diverges at %s", n.Name)
		}
	}
}

// mapTest builds a mapped netlist for glitch tests.
func mapTest(t *testing.T) (*mapper.Netlist, *network.Network) {
	t.Helper()
	nw := mustParse(t, testBlif)
	d, err := decomp.Decompose(context.Background(), nw, decomp.Options{Strategy: decomp.MinPower, Style: huffman.Static})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := mapper.Map(context.Background(), d.Network, d.Model, mapper.Options{
		Objective: mapper.PowerDelay, Library: genlib.Lib2(), Relax: mapper.Float64(0.3),
	})
	if err != nil {
		t.Fatal(err)
	}
	return nl, d.Network
}

func TestGlitchBoundsZeroDelay(t *testing.T) {
	nl, sub := mapTest(t)
	rep, err := Glitch(nl, sub, nil, 3000, 11, power.Default())
	if err != nil {
		t.Fatal(err)
	}
	// Per signal, unit-delay transitions on the same vectors must be at
	// least the zero-delay toggles.
	for s, tr := range rep.Transitions {
		if tr+1e-12 < rep.ZeroDelay[s] {
			t.Errorf("signal %s: transitions %.4f < zero-delay toggles %.4f",
				s.Name, tr, rep.ZeroDelay[s])
		}
	}
	if rep.PowerUW+1e-9 < rep.ZeroDelayPowerUW {
		t.Errorf("glitch power %.3f below zero-delay power %.3f",
			rep.PowerUW, rep.ZeroDelayPowerUW)
	}
}

func TestGlitchZeroDelayMatchesAnalytic(t *testing.T) {
	// The simulated zero-delay power over the mapped loads must approach
	// the netlist's analytic report (exact BDD activities × same loads).
	nl, sub := mapTest(t)
	rep, err := Glitch(nl, sub, nil, 30000, 13, power.Default())
	if err != nil {
		t.Fatal(err)
	}
	analytic := nl.Report.PowerUW
	if math.Abs(rep.ZeroDelayPowerUW-analytic) > 0.08*analytic {
		t.Errorf("simulated zero-delay power %.3f vs analytic %.3f (>8%% apart)",
			rep.ZeroDelayPowerUW, analytic)
	}
}

func TestGlitchValidation(t *testing.T) {
	nl, sub := mapTest(t)
	if _, err := Glitch(nl, sub, nil, 0, 1, power.Default()); err == nil {
		t.Error("zero vectors accepted")
	}
}

func TestXorTreeGlitches(t *testing.T) {
	// A cascade of XORs with skewed arrival paths glitches under unit
	// delay: expect strictly more transitions than zero-delay toggles in
	// aggregate.
	text := `
.model xorchain
.inputs a b c d e
.outputs y
.names a b x1
10 1
01 1
.names x1 c x2
10 1
01 1
.names x2 d x3
10 1
01 1
.names x3 e y
10 1
01 1
.end
`
	nw := mustParse(t, text)
	d, err := decomp.Decompose(context.Background(), nw, decomp.Options{Strategy: decomp.MinPower, Style: huffman.Static})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := mapper.Map(context.Background(), d.Network, d.Model, mapper.Options{
		Objective: mapper.AreaDelay, Library: genlib.Lib2(), Relax: mapper.Float64(0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Glitch(nl, d.Network, nil, 4000, 3, power.Default())
	if err != nil {
		t.Fatal(err)
	}
	sumT, sumZ := 0.0, 0.0
	for s := range rep.Transitions {
		sumT += rep.Transitions[s]
		sumZ += rep.ZeroDelay[s]
	}
	if sumT <= sumZ {
		t.Errorf("xor cascade shows no glitching: %.3f vs %.3f", sumT, sumZ)
	}
}

func TestActivitiesParallelDeterministicAcrossWorkers(t *testing.T) {
	nw := mustParse(t, testBlif)
	piProb := map[string]float64{"a": 0.3, "b": 0.6, "c": 0.5, "d": 0.8}
	order := nw.TopoOrder()
	var want map[*network.Node]Estimate
	for _, w := range []int{1, 2, 8} {
		est, err := ActivitiesParallel(context.Background(), nw, piProb, 2000, 7, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if w == 1 {
			want = est
			continue
		}
		for _, n := range order {
			if est[n] != want[n] {
				t.Errorf("workers=%d node %s: %+v != sequential %+v", w, n.Name, est[n], want[n])
			}
		}
	}
}

func TestActivitiesParallelMatchesBDD(t *testing.T) {
	nw := mustParse(t, testBlif)
	piProb := map[string]float64{"a": 0.3, "b": 0.6, "c": 0.5, "d": 0.8}
	if _, err := prob.Compute(nw, piProb, huffman.Static); err != nil {
		t.Fatal(err)
	}
	est, err := ActivitiesParallel(context.Background(), nw, piProb, 40000, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 0.015
	for _, n := range nw.TopoOrder() {
		if math.Abs(est[n].Prob1-n.Prob1) > tol {
			t.Errorf("node %s: MC prob %.4f vs BDD %.4f", n.Name, est[n].Prob1, n.Prob1)
		}
	}
}
