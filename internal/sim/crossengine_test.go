// Cross-engine bit-identity on realistic structures. This is an external
// test package because it draws subjects from internal/circuits and
// internal/verify, which themselves (transitively) depend on sim.
package sim_test

import (
	"fmt"
	"testing"

	"powermap/internal/circuits"
	"powermap/internal/network"
	"powermap/internal/sim"
	"powermap/internal/verify"
)

// subjects yields the bundled benchmark circuits plus seeded random
// networks: wide fanin, shared fanout, constant collapses — the shapes a
// four-node fixture cannot cover.
func subjects(t *testing.T) map[string]*network.Network {
	t.Helper()
	out := map[string]*network.Network{}
	for _, name := range []string{"cm42a", "x2"} {
		b, err := circuits.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = b.Build()
	}
	for _, seed := range []int64{3, 11} {
		name := fmt.Sprintf("rand%d", seed)
		out[name] = verify.RandomNetwork(name, verify.RandConfig{
			Seed: seed, PIs: 8, Nodes: 25, MaxFanin: 4, Depth: 5, Outputs: 3,
		})
	}
	return out
}

// TestCrossEngineBitIdentity is the PR's headline property: on every
// subject, the bit-parallel engine fed the exact same vector transcript as
// the scalar engine produces bit-identical one/toggle counts — at an odd
// vector count so the word-tail mask is always live.
func TestCrossEngineBitIdentity(t *testing.T) {
	for name, nw := range subjects(t) {
		t.Run(name, func(t *testing.T) {
			pp := map[string]float64{}
			for i, pi := range nw.PINames() {
				pp[pi] = 0.2 + 0.05*float64(i%13)
			}
			const vectors, seed = 777, 19
			want, err := sim.ActivitiesFrom(nw, sim.IndependentSource(nw, pp, seed), vectors)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sim.ActivitiesBitwiseFrom(nw, sim.PackVectors(nw, sim.IndependentSource(nw, pp, seed)), vectors)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range nw.TopoOrder() {
				w, g := want[n], got[n]
				if w.Ones != g.Ones || w.Toggles != g.Toggles {
					t.Errorf("node %s: scalar (ones=%d toggles=%d) vs bitwise (ones=%d toggles=%d)",
						n.Name, w.Ones, w.Toggles, g.Ones, g.Toggles)
				}
			}
		})
	}
}
