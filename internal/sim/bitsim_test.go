package sim

import (
	"context"
	"math"
	"testing"

	"powermap/internal/huffman"
	"powermap/internal/network"
	"powermap/internal/prob"
)

// packedIndependent is the chunk-source bridge used throughout the
// cross-engine tests: each chunk packs a scalar IndependentSource, so the
// bit-parallel engine replays exactly the transcript ActivitiesParallel
// reads for the same (seed, chunk) pair.
func packedIndependent(nw *network.Network, piProb map[string]float64) func(int64) WordSource {
	return func(chunkSeed int64) WordSource {
		return PackVectors(nw, IndependentSource(nw, piProb, chunkSeed))
	}
}

// checkCountsEqual compares the exact integer counts of two estimate maps
// over every reachable node.
func checkCountsEqual(t *testing.T, nw *network.Network, label string, want, got map[*network.Node]Estimate) {
	t.Helper()
	for _, n := range nw.TopoOrder() {
		w, g := want[n], got[n]
		if w.Ones != g.Ones || w.Toggles != g.Toggles || w.Vectors != g.Vectors {
			t.Errorf("%s node %s: scalar (ones=%d toggles=%d n=%d) vs bitwise (ones=%d toggles=%d n=%d)",
				label, n.Name, w.Ones, w.Toggles, w.Vectors, g.Ones, g.Toggles, g.Vectors)
		}
	}
}

// TestBitwiseFromMatchesScalarSharedTranscript is the engine's core
// contract: fed the exact same draw transcript, the bit-parallel engine's
// one/toggle counts are bit-identical to the scalar engine's — across
// vector counts that land on, before, and after word boundaries.
func TestBitwiseFromMatchesScalarSharedTranscript(t *testing.T) {
	nw := mustParse(t, testBlif)
	probCases := map[string]map[string]float64{
		"uniform": nil,
		"skewed":  {"a": 0.3, "b": 0.6, "c": 0.5, "d": 0.9},
	}
	for label, pp := range probCases {
		for _, vectors := range []int{1, 2, 63, 64, 65, 127, 128, 129, 777} {
			const seed = 11
			want, err := ActivitiesFrom(nw, IndependentSource(nw, pp, seed), vectors)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ActivitiesBitwiseFrom(nw, PackVectors(nw, IndependentSource(nw, pp, seed)), vectors)
			if err != nil {
				t.Fatal(err)
			}
			checkCountsEqual(t, nw, label, want, got)
		}
	}
}

// TestBitwiseMatchesActivitiesParallel pins the chunked mode to the scalar
// parallel engine: with a packed IndependentSource per chunk and the
// default chunk size, ActivitiesBitwise reproduces ActivitiesParallel's
// counts exactly — including the short tail chunk and vector counts that
// are not multiples of the word or chunk size.
func TestBitwiseMatchesActivitiesParallel(t *testing.T) {
	nw := mustParse(t, testBlif)
	pp := map[string]float64{"a": 0.3, "b": 0.6, "c": 0.5, "d": 0.8}
	const seed = 7
	for _, vectors := range []int{1, 63, 64, 65, 511, 512, 513, 1000, 2048} {
		want, err := ActivitiesParallel(context.Background(), nw, pp, vectors, seed, 2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ActivitiesBitwise(context.Background(), nw, pp, BitwiseOptions{
			Vectors: vectors,
			Seed:    seed,
			Workers: 3,
			Source:  packedIndependent(nw, pp),
		})
		if err != nil {
			t.Fatal(err)
		}
		checkCountsEqual(t, nw, "parallel", want, got.Estimates)
		if got.Vectors != vectors {
			t.Errorf("vectors=%d: result reports %d vectors", vectors, got.Vectors)
		}
	}
}

// TestBitwiseDeterministicAcrossWorkers is the concurrency contract: the
// chunk partition depends only on (vectors, seed, chunk size), so every
// worker count produces identical estimates — checked at an odd vector
// count that exercises both the word-tail and chunk-tail masks.
func TestBitwiseDeterministicAcrossWorkers(t *testing.T) {
	nw := mustParse(t, testBlif)
	pp := map[string]float64{"a": 0.3, "b": 0.6, "c": 0.5, "d": 0.8}
	for _, chunk := range []int{0, 37} { // default and a deliberately odd override
		var want *BitwiseResult
		for _, w := range []int{1, 2, 8} {
			got, err := ActivitiesBitwise(context.Background(), nw, pp, BitwiseOptions{
				Vectors:      777,
				Seed:         42,
				Workers:      w,
				ChunkVectors: chunk,
			})
			if err != nil {
				t.Fatalf("chunk=%d workers=%d: %v", chunk, w, err)
			}
			if w == 1 {
				want = got
				continue
			}
			for _, n := range nw.TopoOrder() {
				if got.Estimates[n] != want.Estimates[n] {
					t.Errorf("chunk=%d workers=%d node %s: %+v != sequential %+v",
						chunk, w, n.Name, got.Estimates[n], want.Estimates[n])
				}
			}
			if got.MaxActivityCI != want.MaxActivityCI || got.Vectors != want.Vectors {
				t.Errorf("chunk=%d workers=%d: summary (%v, %d) != sequential (%v, %d)",
					chunk, w, got.MaxActivityCI, got.Vectors, want.MaxActivityCI, want.Vectors)
			}
		}
	}
}

// TestBitwiseValidation rejects empty budgets, out-of-range probabilities
// and impossible confidence levels.
func TestBitwiseValidation(t *testing.T) {
	nw := mustParse(t, testBlif)
	ctx := context.Background()
	if _, err := ActivitiesBitwise(ctx, nw, nil, BitwiseOptions{}); err == nil {
		t.Error("zero vectors and zero CI target accepted")
	}
	if _, err := ActivitiesBitwise(ctx, nw, map[string]float64{"a": 1.5}, BitwiseOptions{Vectors: 64}); err == nil {
		t.Error("P(a=1) = 1.5 accepted")
	}
	if _, err := ActivitiesBitwise(ctx, nw, nil, BitwiseOptions{Vectors: 64, Confidence: 1.5}); err == nil {
		t.Error("confidence 1.5 accepted")
	}
	if _, err := ActivitiesBitwiseFrom(nw, IndependentWords(nw, nil, 1), 0); err == nil {
		t.Error("zero vectors accepted by ActivitiesBitwiseFrom")
	}
}

// TestBitwiseMatchesBDD cross-validates the fast path (IndependentWords,
// one RNG word per PI at p = 0.5 and per-lane Bernoulli otherwise) against
// the exact BDD probabilities.
func TestBitwiseMatchesBDD(t *testing.T) {
	nw := mustParse(t, testBlif)
	pp := map[string]float64{"a": 0.3, "b": 0.6, "c": 0.5, "d": 0.8}
	if _, err := prob.Compute(nw, pp, huffman.Static); err != nil {
		t.Fatal(err)
	}
	res, err := ActivitiesBitwise(context.Background(), nw, pp, BitwiseOptions{Vectors: 40000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const tol = 0.015
	for _, n := range nw.TopoOrder() {
		e := res.Estimates[n]
		if math.Abs(e.Prob1-n.Prob1) > tol {
			t.Errorf("node %s: MC prob %.4f vs BDD %.4f", n.Name, e.Prob1, n.Prob1)
		}
		if math.Abs(e.Activity-n.Activity) > tol {
			t.Errorf("node %s: MC activity %.4f vs BDD %.4f", n.Name, e.Activity, n.Activity)
		}
	}
	if res.WordsEvaluated <= 0 {
		t.Error("no words evaluated reported")
	}
}

// TestBitwiseCICoverage is the statistical-correctness battery: across many
// independently seeded runs, the reported 95% intervals must cover the
// exact BDD truth at (at least nearly) the nominal rate, for both the
// signal probability and the lag-corrected activity estimator. With 150
// trials the binomial 3.4-sigma band around 0.95 reaches down to ~0.89,
// so a per-node floor of 0.89 fails only on a genuinely undercovering
// interval, never on seed luck.
func TestBitwiseCICoverage(t *testing.T) {
	nw := mustParse(t, testBlif)
	pp := map[string]float64{"a": 0.3, "b": 0.6, "c": 0.5, "d": 0.8}
	if _, err := prob.Compute(nw, pp, huffman.Static); err != nil {
		t.Fatal(err)
	}
	truthP := map[*network.Node]float64{}
	truthA := map[*network.Node]float64{}
	order := nw.TopoOrder()
	for _, n := range order {
		truthP[n] = n.Prob1
		truthA[n] = n.Activity
	}
	const (
		runs    = 150
		vectors = 2048
		floor   = 0.89
	)
	coverP := map[*network.Node]int{}
	coverA := map[*network.Node]int{}
	for run := 0; run < runs; run++ {
		res, err := ActivitiesBitwise(context.Background(), nw, pp, BitwiseOptions{
			Vectors: vectors, Seed: int64(1000 + run),
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range order {
			e := res.Estimates[n]
			if math.Abs(e.Prob1-truthP[n]) <= e.Prob1CI {
				coverP[n]++
			}
			if math.Abs(e.Activity-truthA[n]) <= e.ActivityCI {
				coverA[n]++
			}
		}
	}
	for _, n := range order {
		if c := float64(coverP[n]) / runs; c < floor {
			t.Errorf("node %s: Prob1 CI covers truth in %.1f%% of %d runs (want >= %.0f%%)",
				n.Name, 100*c, runs, 100*floor)
		}
		if c := float64(coverA[n]) / runs; c < floor {
			t.Errorf("node %s: activity CI covers truth in %.1f%% of %d runs (want >= %.0f%%)",
				n.Name, 100*c, runs, 100*floor)
		}
	}
}

// TestBitwiseTargetCI exercises sequential-batch mode: the run stops once
// every node's activity CI is under the target, samples a whole number of
// batches, needs more vectors for tighter targets, and is bit-identical
// for every worker count (the stop rule only looks at batch boundaries).
func TestBitwiseTargetCI(t *testing.T) {
	nw := mustParse(t, testBlif)
	pp := map[string]float64{"a": 0.3, "b": 0.6, "c": 0.5, "d": 0.8}
	run := func(target float64, workers int) *BitwiseResult {
		t.Helper()
		res, err := ActivitiesBitwise(context.Background(), nw, pp, BitwiseOptions{
			TargetCI: target,
			Seed:     9,
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	loose := run(0.02, 1)
	tight := run(0.004, 1)
	batch := ciBatchChunks * mcChunk
	for _, res := range []*BitwiseResult{loose, tight} {
		if res.Vectors%batch != 0 {
			t.Errorf("sampled %d vectors, not a whole number of %d-vector batches", res.Vectors, batch)
		}
	}
	if loose.MaxActivityCI > 0.02 {
		t.Errorf("loose run stopped at CI %.5f > target 0.02", loose.MaxActivityCI)
	}
	if tight.MaxActivityCI > 0.004 {
		t.Errorf("tight run stopped at CI %.5f > target 0.004", tight.MaxActivityCI)
	}
	if tight.Vectors <= loose.Vectors {
		t.Errorf("tighter target sampled %d vectors, loose target %d; want strictly more",
			tight.Vectors, loose.Vectors)
	}
	for _, w := range []int{2, 8} {
		again := run(0.004, w)
		if again.Vectors != tight.Vectors || again.MaxActivityCI != tight.MaxActivityCI {
			t.Errorf("workers=%d: TargetCI run (%d vectors, CI %.6f) diverged from sequential (%d, %.6f)",
				w, again.Vectors, again.MaxActivityCI, tight.Vectors, tight.MaxActivityCI)
		}
		for _, n := range nw.TopoOrder() {
			if again.Estimates[n] != tight.Estimates[n] {
				t.Errorf("workers=%d node %s: %+v != sequential %+v", w, n.Name, again.Estimates[n], tight.Estimates[n])
			}
		}
	}
}

// TestBitwiseTargetCIRespectsMaxVectors caps a hopeless target at the
// vector budget instead of sampling forever.
func TestBitwiseTargetCIRespectsMaxVectors(t *testing.T) {
	nw := mustParse(t, testBlif)
	const cap = 2 * ciBatchChunks * mcChunk
	res, err := ActivitiesBitwise(context.Background(), nw, nil, BitwiseOptions{
		TargetCI:   1e-9,
		MaxVectors: cap,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Vectors != cap {
		t.Errorf("sampled %d vectors under an unreachable target, want the %d cap", res.Vectors, cap)
	}
	if res.MaxActivityCI <= 1e-9 {
		t.Errorf("CI %.2e is implausibly under the unreachable target", res.MaxActivityCI)
	}
}

// TestCompileProgramConstants lowers constant nodes to all-zero/all-one
// words: a cover with no cubes is constant 0, a cover with one all-DC cube
// is the tautology.
func TestCompileProgramConstants(t *testing.T) {
	nw := mustParse(t, `
.model consts
.inputs a
.outputs y z
.names k0
.names k1
1
.names a k0 k1 y
111 1
.names a z
1 1
.end
`)
	res, err := ActivitiesBitwiseFrom(nw, IndependentWords(nw, nil, 5), 320)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nw.TopoOrder() {
		e := res[n]
		switch n.Name {
		case "k0":
			if e.Ones != 0 || e.Toggles != 0 {
				t.Errorf("constant 0 node: ones=%d toggles=%d", e.Ones, e.Toggles)
			}
		case "k1":
			if e.Ones != 320 || e.Toggles != 0 {
				t.Errorf("constant 1 node: ones=%d toggles=%d", e.Ones, e.Toggles)
			}
		}
	}
}
