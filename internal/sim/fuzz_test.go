package sim

import (
	"testing"

	"powermap/internal/blif"
)

// FuzzBitwiseVsScalar feeds arbitrary BLIF text and a seed through both
// activity engines on the same vector transcript and demands bit-identical
// one/toggle counts. The corpus mirrors the BLIF parser's fuzz seeds, so
// any accepted shape the parser's fuzzer discovers also becomes a
// cross-engine subject here.
func FuzzBitwiseVsScalar(f *testing.F) {
	seeds := []string{
		testBlif,
		lagBlif,
		".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n",
		".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n",
		".model m\n.inputs a b \\\n c\n.outputs y\n.names a b c y\n1-1 1\n.end\n",
		".model m\n.outputs y\n.names y\n1\n.end\n",
		".model m\n.inputs a\n.outputs y z\n.names k0\n.names a k0 y\n10 1\n.names a z\n0 1\n.end\n",
	}
	for _, s := range seeds {
		f.Add(s, int64(1))
	}
	f.Fuzz(func(t *testing.T, input string, seed int64) {
		nw, err := blif.ParseString(input)
		if err != nil {
			return // parser rejections are the parser fuzzer's business
		}
		// Size gate: the scalar reference is slow, and enormous accepted
		// networks add nothing to the bit-identity property.
		if len(nw.PIs) > 24 || len(nw.TopoOrder()) > 128 {
			return
		}
		const vectors = 130 // crosses two word boundaries with a tail
		want, err := ActivitiesFrom(nw, IndependentSource(nw, nil, seed), vectors)
		if err != nil {
			t.Fatalf("scalar engine rejected an accepted network: %v", err)
		}
		got, err := ActivitiesBitwiseFrom(nw, PackVectors(nw, IndependentSource(nw, nil, seed)), vectors)
		if err != nil {
			t.Fatalf("bitwise engine rejected an accepted network: %v", err)
		}
		for _, n := range nw.TopoOrder() {
			w, g := want[n], got[n]
			if w.Ones != g.Ones || w.Toggles != g.Toggles {
				t.Fatalf("node %s: scalar (ones=%d toggles=%d) vs bitwise (ones=%d toggles=%d)\ninput:\n%s",
					n.Name, w.Ones, w.Toggles, g.Ones, g.Toggles, input)
			}
		}
	})
}
