package sim

import (
	"fmt"
	"math/rand"

	"powermap/internal/network"
)

// Lag-one temporal correlation: the paper's zero-delay model (and the
// independent sources above) assume consecutive input vectors are drawn
// independently, so a PI's toggle rate is pinned to 2·p·(1-p). Real input
// streams are usually stickier (or, for clock-like inputs, more agitated).
// LagOneSource models each PI as a stationary two-state Markov chain with
// marginal P(pi=1) = p and *prescribed* toggle probability a:
//
//	P(flip | prev=1) = a / (2p)        P(flip | prev=0) = a / (2(1-p))
//
// Detailed balance gives the stationary distribution π(1) = p, and the
// stationary toggle rate is p·a/(2p) + (1-p)·a/(2(1-p)) = a. Feasibility
// requires a ≤ 2·min(p, 1-p) (both flip probabilities ≤ 1); a = 2p(1-p)
// recovers the independent source's statistics.

// LagOneSource returns a VectorSource with lag-one temporal correlation:
// P(pi=1) from piProb (default 0.5) and per-cycle toggle probability from
// piTrans (default 2p(1-p), i.e. temporally independent). The first draw
// comes from the stationary distribution.
func LagOneSource(nw *network.Network, piProb, piTrans map[string]float64, seed int64) (VectorSource, error) {
	type chain struct {
		p            float64 // stationary P(1)
		flip1, flip0 float64 // flip probability given prev 1 / prev 0
	}
	chains := make([]chain, len(nw.PIs))
	for i, pi := range nw.PIs {
		p, ok := piProb[pi.Name]
		if !ok {
			p = 0.5
		}
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("sim: P(%s=1) = %v out of [0,1]", pi.Name, p)
		}
		a, ok := piTrans[pi.Name]
		if !ok {
			a = 2 * p * (1 - p)
		}
		limit := 2 * p
		if 2*(1-p) < limit {
			limit = 2 * (1 - p)
		}
		if a < 0 || a > limit {
			return nil, fmt.Errorf("sim: toggle probability %v of %s out of [0, 2·min(p,1-p)] = [0, %v] for p = %v",
				a, pi.Name, limit, p)
		}
		c := chain{p: p}
		if p > 0 {
			c.flip1 = a / (2 * p)
		}
		if p < 1 {
			c.flip0 = a / (2 * (1 - p))
		}
		chains[i] = c
	}
	r := rand.New(rand.NewSource(seed))
	prev := make([]bool, len(chains))
	started := false
	return func(dst map[string]bool) {
		for i, c := range chains {
			var v bool
			if !started {
				v = r.Float64() < c.p
			} else {
				flip := c.flip0
				if prev[i] {
					flip = c.flip1
				}
				v = prev[i] != (r.Float64() < flip)
			}
			prev[i] = v
			dst[nw.PIs[i].Name] = v
		}
		started = true
	}, nil
}

// LagOneWordFactory validates the lag-one parameters once and returns a
// per-chunk WordSource factory for ActivitiesBitwise: each chunk packs an
// independently seeded lag-one stream.
func LagOneWordFactory(nw *network.Network, piProb, piTrans map[string]float64) (func(chunkSeed int64) WordSource, error) {
	if _, err := LagOneSource(nw, piProb, piTrans, 0); err != nil {
		return nil, err
	}
	return func(chunkSeed int64) WordSource {
		src, _ := LagOneSource(nw, piProb, piTrans, chunkSeed)
		return PackVectors(nw, src)
	}, nil
}
