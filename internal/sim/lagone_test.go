package sim

import (
	"context"
	"math"
	"testing"
)

const lagBlif = `
.model lag
.inputs a b
.outputs y
.names a b y
11 1
.end
`

// TestLagOneStationaryStatistics checks the Markov-chain construction
// delivers what it promises: the stationary marginal P(pi=1) = p and the
// prescribed per-cycle toggle rate a, measured on a long sampled stream.
func TestLagOneStationaryStatistics(t *testing.T) {
	nw := mustParse(t, lagBlif)
	pp := map[string]float64{"a": 0.7, "b": 0.5}
	trans := map[string]float64{"a": 0.2, "b": 0.8} // sticky vs agitated
	factory, err := LagOneWordFactory(nw, pp, trans)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ActivitiesBitwise(context.Background(), nw, pp, BitwiseOptions{
		Vectors: 1 << 16,
		Seed:    5,
		Source:  factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	const tol = 0.02
	for _, n := range nw.PIs {
		e := res.Estimates[n]
		if math.Abs(e.Prob1-pp[n.Name]) > tol {
			t.Errorf("PI %s: measured P(1) %.4f vs prescribed %.4f", n.Name, e.Prob1, pp[n.Name])
		}
		if math.Abs(e.Activity-trans[n.Name]) > tol {
			t.Errorf("PI %s: measured toggle rate %.4f vs prescribed %.4f", n.Name, e.Activity, trans[n.Name])
		}
	}
}

// TestLagOneDefaultsToIndependentRate omits the transition map for one PI:
// its toggle rate must default to the independent stream's 2p(1-p).
func TestLagOneDefaultsToIndependentRate(t *testing.T) {
	nw := mustParse(t, lagBlif)
	pp := map[string]float64{"a": 0.3, "b": 0.5}
	factory, err := LagOneWordFactory(nw, pp, map[string]float64{"b": 0.1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ActivitiesBitwise(context.Background(), nw, pp, BitwiseOptions{
		Vectors: 1 << 16,
		Seed:    8,
		Source:  factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	var a *Estimate
	for _, n := range nw.PIs {
		if n.Name == "a" {
			e := res.Estimates[n]
			a = &e
		}
	}
	want := 2 * 0.3 * 0.7
	if a == nil || math.Abs(a.Activity-want) > 0.02 {
		t.Errorf("defaulted PI toggle rate %v, want ~%.3f", a, want)
	}
}

// TestLagOneValidation rejects infeasible chains: the toggle probability
// is bounded by 2·min(p, 1-p), and probabilities must be in [0,1].
func TestLagOneValidation(t *testing.T) {
	nw := mustParse(t, lagBlif)
	cases := []struct {
		name  string
		prob  map[string]float64
		trans map[string]float64
	}{
		{"toggle above limit", map[string]float64{"a": 0.1}, map[string]float64{"a": 0.5}},
		{"negative toggle", nil, map[string]float64{"a": -0.1}},
		{"prob above one", map[string]float64{"a": 1.5}, nil},
	}
	for _, c := range cases {
		if _, err := LagOneSource(nw, c.prob, c.trans, 1); err == nil {
			t.Errorf("%s: LagOneSource accepted it", c.name)
		}
		if _, err := LagOneWordFactory(nw, c.prob, c.trans); err == nil {
			t.Errorf("%s: LagOneWordFactory accepted it", c.name)
		}
	}
}

// TestLagOnePackedMatchesScalar pins the packed adapter on a correlated
// source: the bit-parallel engine fed a packed lag-one stream produces
// counts bit-identical to the scalar engine reading the same stream.
func TestLagOnePackedMatchesScalar(t *testing.T) {
	nw := mustParse(t, testBlif)
	pp := map[string]float64{"a": 0.6, "b": 0.5, "c": 0.4, "d": 0.5}
	trans := map[string]float64{"a": 0.1, "c": 0.7}
	for _, vectors := range []int{65, 777} {
		const seed = 21
		scalarSrc, err := LagOneSource(nw, pp, trans, seed)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ActivitiesFrom(nw, scalarSrc, vectors)
		if err != nil {
			t.Fatal(err)
		}
		packedSrc, err := LagOneSource(nw, pp, trans, seed)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ActivitiesBitwiseFrom(nw, PackVectors(nw, packedSrc), vectors)
		if err != nil {
			t.Fatal(err)
		}
		checkCountsEqual(t, nw, "lag-one", want, got)
	}
}
