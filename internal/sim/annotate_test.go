package sim

import (
	"context"
	"math"
	"testing"

	"powermap/internal/bdd"
	"powermap/internal/huffman"
	"powermap/internal/network"
	"powermap/internal/prob"
)

// exactTruth computes the reference annotations on a private copy so a
// test can compare Annotate's output without the two runs overwriting
// each other's node fields.
func exactTruth(t *testing.T, text string, pp map[string]float64, style huffman.Style) map[string]float64 {
	t.Helper()
	ref := mustParse(t, text)
	if _, err := prob.Compute(ref, pp, style); err != nil {
		t.Fatal(err)
	}
	truth := map[string]float64{}
	for _, n := range ref.TopoOrder() {
		truth[n.Name] = n.Activity
	}
	return truth
}

// TestAnnotateExactByDefault pins backward compatibility: the zero policy
// selects exact BDDs and annotates identically to prob.Compute.
func TestAnnotateExactByDefault(t *testing.T) {
	pp := map[string]float64{"a": 0.3, "b": 0.6, "c": 0.5, "d": 0.8}
	truth := exactTruth(t, testBlif, pp, huffman.Static)
	nw := mustParse(t, testBlif)
	res, err := Annotate(context.Background(), nw, pp, AnnotateOptions{Style: huffman.Static})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != prob.Exact || res.Model == nil || res.Sampled != nil || res.ExactErr != nil {
		t.Fatalf("zero policy did not run clean exact: %+v", res)
	}
	for _, n := range nw.TopoOrder() {
		if n.Activity != truth[n.Name] {
			t.Errorf("node %s: annotated %.6f vs prob.Compute %.6f", n.Name, n.Activity, truth[n.Name])
		}
	}
}

// TestAnnotateExactErrorWithoutAuto keeps the failure contract: a node
// limit under an Exact policy is an error, never a silent approximation.
func TestAnnotateExactErrorWithoutAuto(t *testing.T) {
	nw := mustParse(t, testBlif)
	_, err := Annotate(context.Background(), nw, nil, AnnotateOptions{
		Style: huffman.Static,
		BDD:   bdd.Config{NodeLimit: 4},
	})
	if err == nil {
		t.Fatal("exact policy swallowed a node-limit failure")
	}
	if !bdd.IsNodeLimit(err) {
		t.Fatalf("error does not carry bdd.ErrNodeLimit: %v", err)
	}
}

// TestAnnotateAutoFallsBackOnNodeLimit is the auto policy's safety net: an
// exact build that trips the node limit is retried on the sampling engine,
// with the original failure reported alongside the estimates.
func TestAnnotateAutoFallsBackOnNodeLimit(t *testing.T) {
	pp := map[string]float64{"a": 0.3, "b": 0.6, "c": 0.5, "d": 0.8}
	truth := exactTruth(t, testBlif, pp, huffman.Static)
	nw := mustParse(t, testBlif)
	res, err := Annotate(context.Background(), nw, pp, AnnotateOptions{
		Policy: prob.Policy{Engine: prob.Auto},
		Style:  huffman.Static,
		BDD:    bdd.Config{NodeLimit: 4},
		Sampling: BitwiseOptions{
			Vectors: 40000,
			Seed:    3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != prob.Sampling || res.Sampled == nil || res.Model != nil {
		t.Fatalf("auto policy did not fall back to sampling: %+v", res)
	}
	if res.ExactErr == nil || !bdd.IsNodeLimit(res.ExactErr) {
		t.Fatalf("fallback did not preserve the node-limit error: %v", res.ExactErr)
	}
	if res.Vectors != 40000 {
		t.Errorf("sampled %d vectors, want the configured 40000", res.Vectors)
	}
	const tol = 0.015
	for _, n := range nw.TopoOrder() {
		if n.Kind == network.Internal && math.Abs(n.Activity-truth[n.Name]) > tol {
			t.Errorf("node %s: sampled activity %.4f vs exact %.4f", n.Name, n.Activity, truth[n.Name])
		}
	}
}

// TestAnnotateAutoThreshold samples outright (no exact attempt, no error)
// when the network exceeds the policy's node threshold.
func TestAnnotateAutoThreshold(t *testing.T) {
	nw := mustParse(t, testBlif)
	res, err := Annotate(context.Background(), nw, nil, AnnotateOptions{
		Policy:   prob.Policy{Engine: prob.Auto, AutoThreshold: 1},
		Style:    huffman.Static,
		Sampling: BitwiseOptions{Vectors: 512, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != prob.Sampling || res.ExactErr != nil {
		t.Fatalf("over-threshold network did not sample directly: %+v", res)
	}
}

// TestAnnotateDefaultsSamplingBudget fills DefaultSampleVectors when the
// caller configured neither a vector count nor a CI target.
func TestAnnotateDefaultsSamplingBudget(t *testing.T) {
	nw := mustParse(t, testBlif)
	res, err := Annotate(context.Background(), nw, nil, AnnotateOptions{
		Policy: prob.Policy{Engine: prob.Sampling},
		Style:  huffman.Static,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Vectors != DefaultSampleVectors {
		t.Errorf("defaulted budget %d, want DefaultSampleVectors=%d", res.Vectors, DefaultSampleVectors)
	}
}

// TestAnnotateStyleMapping maps sampled estimates onto per-style
// activities the same way prob does: domino-p uses P(1), domino-n P(0),
// static the measured toggle rate.
func TestAnnotateStyleMapping(t *testing.T) {
	for _, style := range []huffman.Style{huffman.Static, huffman.DominoP, huffman.DominoN} {
		nw := mustParse(t, testBlif)
		res, err := Annotate(context.Background(), nw, nil, AnnotateOptions{
			Policy:   prob.Policy{Engine: prob.Sampling},
			Style:    style,
			Sampling: BitwiseOptions{Vectors: 1024, Seed: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range nw.TopoOrder() {
			e := res.Sampled.Estimates[n]
			want := e.Activity
			switch style {
			case huffman.DominoP:
				want = e.Prob1
			case huffman.DominoN:
				want = 1 - e.Prob1
			}
			if n.Activity != want {
				t.Errorf("style %v node %s: annotated %.6f, want %.6f", style, n.Name, n.Activity, want)
			}
		}
	}
}

// TestAnnotateTransForcesSampling: exact BDDs cannot express temporal
// correlation, so a transition map overrides even an Exact policy.
func TestAnnotateTransForcesSampling(t *testing.T) {
	nw := mustParse(t, testBlif)
	pp := map[string]float64{"a": 0.5, "b": 0.5, "c": 0.5, "d": 0.5}
	res, err := Annotate(context.Background(), nw, pp, AnnotateOptions{
		Style:    huffman.Static,
		Trans:    map[string]float64{"a": 0.1},
		Sampling: BitwiseOptions{Vectors: 2048, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != prob.Sampling || res.ExactErr != nil {
		t.Fatalf("transition map did not force sampling: %+v", res)
	}
	// The sticky input must measure well below the independent rate 0.5.
	for _, n := range nw.PIs {
		if n.Name == "a" {
			if e := res.Sampled.Estimates[n]; math.Abs(e.Activity-0.1) > 0.03 {
				t.Errorf("correlated PI a: toggle rate %.4f, want ~0.1", e.Activity)
			}
		}
	}
	// An infeasible transition map surfaces as a validation error.
	if _, err := Annotate(context.Background(), nw, map[string]float64{"a": 0.05}, AnnotateOptions{
		Style:    huffman.Static,
		Trans:    map[string]float64{"a": 0.9},
		Sampling: BitwiseOptions{Vectors: 64, Seed: 4},
	}); err == nil {
		t.Error("infeasible transition map accepted")
	}
}
