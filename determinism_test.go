package powermap

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"powermap/internal/core"
	"powermap/internal/eval"
)

// synthSignature captures everything a downstream consumer can observe
// about a synthesis result: the serialized mapped netlist, the gate list
// in emission order, and the priced report.
func synthSignature(t *testing.T, res *Result) string {
	t.Helper()
	var blif bytes.Buffer
	if err := res.Netlist.WriteBLIF(&blif); err != nil {
		t.Fatal(err)
	}
	var gates strings.Builder
	for _, g := range res.Netlist.Gates {
		fmt.Fprintf(&gates, "%s=%s(", g.Root.Name, g.Cell.Name)
		for i, in := range g.Inputs {
			if i > 0 {
				gates.WriteByte(',')
			}
			gates.WriteString(in.Name)
		}
		gates.WriteString(")\n")
	}
	return fmt.Sprintf("report=%+v\ngates:\n%s\nblif:\n%s",
		res.Report, gates.String(), blif.String())
}

// TestSynthesizeDeterministicAcrossWorkers is the concurrency contract of
// the pipeline: for every worker count the mapped netlist, its gate order,
// and the priced report are byte-identical to the sequential run — in DAG,
// strict-tree, and cut-backend mapping modes.
func TestSynthesizeDeterministicAcrossWorkers(t *testing.T) {
	type mode struct {
		name    string
		backend MapperBackend
		tree    bool
	}
	modes := []mode{
		{"dag", BackendStructural, false},
		{"tree", BackendStructural, true},
		{"cuts", BackendCuts, false},
	}
	for _, name := range []string{"cm42a", "x2", "s208"} {
		for _, md := range modes {
			t.Run(fmt.Sprintf("%s/%s", name, md.name), func(t *testing.T) {
				b, err := BenchmarkByName(name)
				if err != nil {
					t.Fatal(err)
				}
				var want string
				for _, w := range []int{1, 2, 8} {
					res, err := SynthesizeContext(context.Background(), b.Build(), Options{
						Method:   MethodVI,
						Style:    Static,
						Mapper:   md.backend,
						TreeMode: md.tree,
						Workers:  w,
					})
					if err != nil {
						t.Fatalf("workers=%d: %v", w, err)
					}
					got := synthSignature(t, res)
					if w == 1 {
						want = got
						continue
					}
					if got != want {
						t.Errorf("workers=%d diverged from sequential run:\n--- want ---\n%s\n--- got ---\n%s",
							w, want, got)
					}
				}
			})
		}
	}
}

// TestRunSuiteDeterministicAcrossWorkers pins the harness-level fan-out:
// the formatted Tables 2/3 must not depend on the worker count.
func TestRunSuiteDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("suite determinism test skipped in -short mode")
	}
	names := []string{"cm42a", "x2"}
	render := func(rows []eval.CircuitRow) string {
		return eval.FormatTable(rows, []core.Method{MethodI, MethodII, MethodIII}) +
			eval.FormatTable(rows, []core.Method{MethodIV, MethodV, MethodVI})
	}
	var want string
	for _, w := range []int{1, 4} {
		rows, err := RunSuite(Methods(), Options{Style: Static, Workers: w}, names)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got := render(rows)
		if w == 1 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d tables diverged from sequential run:\n--- want ---\n%s\n--- got ---\n%s",
				w, want, got)
		}
	}
}

// TestSynthesizeContextCancel checks that a canceled context aborts the
// run with a context error rather than a partial result.
func TestSynthesizeContextCancel(t *testing.T) {
	b, err := BenchmarkByName("cm42a")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SynthesizeContext(ctx, b.Build(), Options{Method: MethodVI, Style: Static})
	if err == nil {
		t.Fatal("want error from canceled context, got result")
	}
	if res != nil {
		t.Fatalf("want nil result on cancellation, got %v", res)
	}
	if !strings.Contains(err.Error(), "context canceled") {
		t.Errorf("error %q does not mention cancellation", err)
	}
}

// TestSampleActivitiesDeterministicAcrossWorkers pins the sampling
// engine's concurrency contract at the facade: for every worker count the
// bit-parallel estimates are identical, including at vector counts that
// are multiples of neither the 64-lane word nor the chunk size.
func TestSampleActivitiesDeterministicAcrossWorkers(t *testing.T) {
	b, err := BenchmarkByName("cm42a")
	if err != nil {
		t.Fatal(err)
	}
	nw := b.Build()
	order := nw.TopoOrder()
	for _, vectors := range []int{777, 1537} {
		var want *SamplingResult
		for _, w := range []int{1, 2, 8} {
			res, err := SampleActivities(context.Background(), nw, nil, SamplingOptions{
				Vectors: vectors,
				Seed:    23,
				Workers: w,
			})
			if err != nil {
				t.Fatalf("vectors=%d workers=%d: %v", vectors, w, err)
			}
			if w == 1 {
				want = res
				continue
			}
			if res.MaxActivityCI != want.MaxActivityCI || res.Vectors != want.Vectors {
				t.Errorf("vectors=%d workers=%d: summary (%v, %d) diverged from sequential (%v, %d)",
					vectors, w, res.MaxActivityCI, res.Vectors, want.MaxActivityCI, want.Vectors)
			}
			for _, n := range order {
				if res.Estimates[n] != want.Estimates[n] {
					t.Errorf("vectors=%d workers=%d node %s: %+v != sequential %+v",
						vectors, w, n.Name, res.Estimates[n], want.Estimates[n])
				}
			}
		}
	}
}
