// Command pmap runs the full power-aware synthesis flow of the paper on a
// BLIF netlist or a built-in benchmark: technology-independent quick-opt,
// power-efficient technology decomposition (Section 2), and power-efficient
// technology mapping (Section 3), then reports gate area, delay and average
// power, and optionally the mapped gate list.
//
// Usage:
//
//	pmap -blif circuit.blif -method VI
//	pmap -circuit alu2 -method IV -style static -relax 0.2 -gates
//	pmap -circuit s208 -method I -recover -write mapped.blif
//	pmap -circuit cm42a -v -stats -stats-out stats.json -trace trace.json
//	pmap -circuit alu2 -method VI -serve :9090
package main

import (
	"fmt"
	"os"

	"powermap/internal/cli"
)

func main() {
	if err := cli.Pmap(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pmap:", err)
		os.Exit(1)
	}
}
