// Command tables regenerates the paper's experimental results:
//
//	tables -table 1           Table 1  (Modified Huffman optimality rate)
//	tables -table 2           Table 2  (Methods I–III: ad-map)
//	tables -table 3           Table 3  (Methods IV–VI: pd-map)
//	tables -table summary     Section 4 summary ratios vs the paper
//	tables -table figure1     the Figure 1 worked example
//	tables -table correlated  the correlated-input extension experiment
//	tables -table all         everything
//
// -circuits restricts Tables 2/3 to a comma-separated benchmark subset.
package main

import (
	"fmt"
	"os"

	"powermap/internal/cli"
)

func main() {
	if err := cli.Tables(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}
