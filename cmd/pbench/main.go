// Command pbench is the pipeline's benchmark-regression harness: it runs
// the evaluation suite N times under full instrumentation, aggregates
// per-phase wall time and allocation into a schema-versioned
// BENCH_pipeline.json manifest, and compares it against a committed
// baseline, exiting non-zero when a phase regresses beyond the threshold.
//
// Usage:
//
//	pbench -runs 3 -quick            fast CI workload (cm42a + x2)
//	pbench -runs 5                   full default workload
//	pbench -baseline BENCH_pipeline.json -threshold 15
//	pbench -fail=false               report but never fail (CI visibility mode)
package main

import (
	"fmt"
	"os"

	"powermap/internal/cli"
)

func main() {
	if err := cli.Pbench(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pbench:", err)
		os.Exit(1)
	}
}
