// Command pexplain queries the decision-provenance journals written by
// pmap/powerest/pcheck -journal, tables -journal-dir and pbench
// -journal-dir: JSONL files recording every decomposition tree, mapper
// match and per-gate power attribution of a synthesis run.
//
// Usage:
//
//	pexplain top -n 20 run.jsonl
//	pexplain why -gate g42 run.jsonl
//	pexplain diff a.jsonl b.jsonl
//	pexplain diff -json x2-I.jsonl x2-V.jsonl
package main

import (
	"fmt"
	"os"

	"powermap/internal/cli"
)

func main() {
	if err := cli.Pexplain(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pexplain:", err)
		os.Exit(1)
	}
}
