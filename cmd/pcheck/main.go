// Command pcheck formally verifies the synthesis flow: it proves the
// source network, the optimized network, the decomposed subject graph and
// the mapped netlist combinationally equivalent with global ROBDDs, audits
// every power-delay curve for the non-inferiority invariant, cross-checks
// the mapped report against independent recomputations, and can fuzz the
// whole pipeline over seeded random networks or check the Huffman and
// package-merge constructions against an exhaustive enumeration oracle.
// Any violation is reported — with a counterexample input cube when the
// failure is functional — and the command exits nonzero.
//
// Usage:
//
//	pcheck -circuit cm42a -methods all
//	pcheck -blif circuit.blif -lib my.genlib -methods I,VI -tree
//	pcheck -random 50 -seed 7 -workers 8
//	pcheck -huffman 100 -style domino-p
//	pcheck -circuit cm42a -inject   # self-test: must exit nonzero
package main

import (
	"fmt"
	"os"

	"powermap/internal/cli"
)

func main() {
	if err := cli.Pcheck(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pcheck:", err)
		os.Exit(1)
	}
}
