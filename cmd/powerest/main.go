// Command powerest estimates zero-delay switching activity and signal
// probabilities for a BLIF network via exact global BDDs (the Equation 2
// linear traversal), in the manner of the Ghosh et al. estimator the paper
// used. It reports per-node probabilities/activities and network totals,
// and can cross-check the exact numbers against Monte-Carlo simulation.
//
// Usage:
//
//	powerest -blif circuit.blif -style static -prob 0.5 -nodes
//	powerest -blif circuit.blif -mc 20000
package main

import (
	"fmt"
	"os"

	"powermap/internal/cli"
)

func main() {
	if err := cli.Powerest(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "powerest:", err)
		os.Exit(1)
	}
}
