// Command pserve is the synthesis-as-a-service daemon: it accepts BLIF
// netlists (or bundled benchmark names) with synthesis options over
// HTTP/JSON on POST /synth and returns the power/area/delay report, the
// mapped netlist and the verification verdict. The full telemetry surface
// (/metrics, /healthz, /readyz, /debug/flight, /debug/pprof) is mounted
// beside the API, and SIGINT/SIGTERM drains gracefully: in-flight requests
// finish, new work is refused with 503, /readyz flips so load balancers
// rotate the instance out.
//
// Usage:
//
//	pserve -addr :8080
//	pserve -addr :8080 -inflight 8 -queue 16 -cache 256 -bdd-limit 2000000
//	pbench -load http://localhost:8080   # replay the suite against it
package main

import (
	"fmt"
	"os"

	"powermap/internal/cli"
)

func main() {
	if err := cli.Pserve(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pserve:", err)
		os.Exit(1)
	}
}
